package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pas2p/internal/apps"
	"pas2p/internal/faults"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
)

// maxRanks bounds scenario rank counts: campaigns are test harnesses,
// and an absurd rank count should fail validation, not OOM the runner.
const maxRanks = 4096

// AppRef names the application a scenario runs.
type AppRef struct {
	Name     string
	Ranks    int
	Workload string // empty selects the app's default
}

// make instantiates the app from the registry.
func (a AppRef) make() (mpi.App, error) {
	return apps.Make(a.Name, a.Ranks, a.Workload)
}

// MachineSpec selects a machine model: a Table 2 preset by name, with
// optional inline overrides (node count, per-node cores, compute rate,
// memory contention, interconnect family) and deployment knobs (core
// restriction, mapping policy). Label is the preset name as written in
// the scenario and identifies the model in reports.
type MachineSpec struct {
	Cluster       string
	Cores         int     // restrict to this many cores (0 = all)
	Mapping       string  // "block" (default) or "cyclic"
	Nodes         int     // override node count (0 = preset)
	CoresPerNode  int     // override per-node cores (0 = preset)
	GFLOPS        float64 // override per-core rate (0 = preset)
	MemContention float64 // override contention factor (<0 = preset)
	Interconnect  string  // "", "gigabit" or "infiniband"

	line int
}

// NewMachineSpec returns a spec for a preset with default knobs, as the
// decoder would build for `cluster: <name>`.
func NewMachineSpec(cluster string) MachineSpec {
	return MachineSpec{Cluster: cluster, MemContention: -1}
}

// Label identifies the model in case IDs and reports.
func (m *MachineSpec) Label() string { return m.Cluster }

// cluster materialises the model: preset plus overrides, validated.
func (m *MachineSpec) cluster() (*machine.Cluster, error) {
	cl := machine.ByName(m.Cluster)
	if cl == nil {
		return nil, fmt.Errorf("unknown cluster %q (use a Table 2 preset name: A, B, C or D)", m.Cluster)
	}
	if m.Nodes > 0 {
		cl.Nodes = m.Nodes
	}
	if m.CoresPerNode > 0 {
		cl.CoresPerNode = m.CoresPerNode
	}
	if m.GFLOPS > 0 {
		cl.CoreGFLOPS = m.GFLOPS
	}
	if m.MemContention >= 0 {
		cl.MemContention = m.MemContention
	}
	switch m.Interconnect {
	case "":
	case "gigabit":
		cl.Interconnect = machine.GigabitEthernet()
	case "infiniband":
		cl.Interconnect = machine.InfiniBand()
	default:
		return nil, fmt.Errorf("unknown interconnect %q (gigabit or infiniband)", m.Interconnect)
	}
	if m.Cores > 0 {
		nodes := (m.Cores + cl.CoresPerNode - 1) / cl.CoresPerNode
		if nodes < 1 {
			nodes = 1
		}
		cl.Nodes = nodes
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	return cl, nil
}

// Deployment lays the scenario's ranks out on the model.
func (m *MachineSpec) Deployment(ranks int) (*machine.Deployment, error) {
	cl, err := m.cluster()
	if err != nil {
		return nil, err
	}
	policy := machine.MapBlock
	if m.Mapping == "cyclic" {
		policy = machine.MapCyclic
	}
	return machine.NewDeployment(cl, ranks, policy)
}

// FaultPlan is a scenario's fault dimension: one spec (the
// faults.ParseSpec grammar) swept over one or more seeds.
type FaultPlan struct {
	Spec  string
	Seeds []int64
}

// Assertions are the checks a scenario makes about each of its cases.
// Each Has* flag records whether the scenario set the bound (the zero
// value of a bound is not a sentinel).
type Assertions struct {
	// PETEBound: the prediction error |PET-AET|/AET must not exceed
	// this many percent (the paper's headline claim, e.g. `lu <= 3`).
	PETEBound    float64
	HasPETEBound bool
	// PhasesMin/PhasesMax bound the total extracted phase count.
	PhasesMin, PhasesMax       int
	HasPhasesMin, HasPhasesMax bool
	// RelevantMin is the minimum number of relevant phases.
	RelevantMin    int
	HasRelevantMin bool
	// CoverageMin: the relevant phases' Eq. 1 mass (Σ PhaseET·W over
	// relevant rows) must cover at least this fraction of the base AET.
	CoverageMin    float64
	HasCoverageMin bool
	// RecoveryInvariant: under a fully-recovering fault schedule the
	// phase set and prediction must match the fault-free pipeline
	// bit-identically (PR 3's chaos property). Requires a faults block.
	RecoveryInvariant bool
	// Determinism: re-running the case (same seed) must reproduce the
	// identical prediction, signature time, phase counts and fault
	// report.
	Determinism bool
	// MaxWall bounds the case's wall-clock time; MaxAllocBytes its heap
	// allocation (process-wide deltas — meaningful at -workers 1).
	MaxWall       time.Duration
	MaxAllocBytes int64
}

// count returns how many assertions are configured.
func (a *Assertions) count() int {
	n := 0
	for _, has := range []bool{
		a.HasPETEBound, a.HasPhasesMin, a.HasPhasesMax, a.HasRelevantMin,
		a.HasCoverageMin, a.RecoveryInvariant, a.Determinism,
		a.MaxWall > 0, a.MaxAllocBytes > 0,
	} {
		if has {
			n++
		}
	}
	return n
}

// Scenario is one declarative experiment: app, machines, optional
// faults, and assertions.
type Scenario struct {
	Name        string
	Description string
	File        string // source path, "" for in-memory scenarios
	App         AppRef
	Base        MachineSpec
	Targets     []MachineSpec
	Faults      *FaultPlan
	// Timeout overrides the campaign's per-case timeout.
	Timeout time.Duration
	Assert  Assertions
}

// Case is one expanded matrix cell: a scenario at one target model and
// one fault seed.
type Case struct {
	Scenario *Scenario
	Target   MachineSpec
	// Seed is the fault seed; meaningful only when the scenario has a
	// fault plan.
	Seed int64
}

// ID identifies the case in reports: name/target=B/seed=3 (seed=- for
// fault-free scenarios).
func (c Case) ID() string {
	seed := "-"
	if c.Scenario.Faults != nil {
		seed = strconv.FormatInt(c.Seed, 10)
	}
	return fmt.Sprintf("%s/target=%s/seed=%s", c.Scenario.Name, c.Target.Label(), seed)
}

// Cases expands the scenario's sweep matrix (targets × fault seeds) in
// deterministic file order.
func (s *Scenario) Cases() []Case {
	var out []Case
	for _, tgt := range s.Targets {
		if s.Faults == nil {
			out = append(out, Case{Scenario: s, Target: tgt})
			continue
		}
		for _, seed := range s.Faults.Seeds {
			out = append(out, Case{Scenario: s, Target: tgt, Seed: seed})
		}
	}
	return out
}

// Injector builds the case's fault injector (nil for fault-free cases).
func (c Case) Injector() (*faults.Injector, error) {
	if c.Scenario.Faults == nil {
		return nil, nil
	}
	return faults.ParseSpec(c.Seed, c.Scenario.Faults.Spec)
}

// Parse parses and fully validates one scenario document. Every error
// is positioned (file:line) — including semantic errors like unknown
// applications, clusters, assertion names or fault-spec keys — so a
// campaign author can fix the exact offending entry.
func Parse(file string, data []byte) (*Scenario, error) {
	root, err := parseTree(file, data)
	if err != nil {
		return nil, err
	}
	d := &decoder{file: file}
	s := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	s.File = file
	return s, nil
}

// decoder walks the node tree with strict key checking. It records the
// first error and makes every subsequent step a no-op, so decode code
// reads straight-line.
type decoder struct {
	file string
	err  error
}

func (d *decoder) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = errAt(d.file, line, format, args...)
	}
}

// checkKeys rejects unknown keys in a mapping, naming the valid set.
func (d *decoder) checkKeys(n *node, context string, known ...string) {
	if d.err != nil {
		return
	}
	for _, e := range n.entries {
		found := false
		for _, k := range known {
			if e.key == k {
				found = true
				break
			}
		}
		if !found {
			d.fail(e.keyLine, "unknown %s key %q (known keys: %s)",
				context, e.key, strings.Join(known, ", "))
			return
		}
	}
}

func (d *decoder) scalar(n *node, what string) string {
	if d.err != nil {
		return ""
	}
	if n.isMap || n.isSeq {
		d.fail(n.line, "%s must be a scalar", what)
		return ""
	}
	return n.scalar
}

func (d *decoder) str(n *node, what string) string {
	s := d.scalar(n, what)
	if d.err == nil && s == "" && !n.quoted {
		d.fail(n.line, "%s must not be empty", what)
	}
	return s
}

func (d *decoder) integer(n *node, what string) int {
	s := d.scalar(n, what)
	if d.err != nil {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail(n.line, "%s: %q is not an integer", what, s)
		return 0
	}
	return v
}

func (d *decoder) float(n *node, what string) float64 {
	s := d.scalar(n, what)
	if d.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail(n.line, "%s: %q is not a number", what, s)
		return 0
	}
	return v
}

func (d *decoder) boolean(n *node, what string) bool {
	s := d.scalar(n, what)
	if d.err != nil {
		return false
	}
	switch s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	d.fail(n.line, "%s: %q is not a boolean (true/false)", what, s)
	return false
}

func (d *decoder) duration(n *node, what string) time.Duration {
	s := d.scalar(n, what)
	if d.err != nil {
		return 0
	}
	v, err := time.ParseDuration(s)
	if err != nil || v <= 0 {
		d.fail(n.line, "%s: %q is not a positive duration (e.g. 30s, 2m)", what, s)
		return 0
	}
	return v
}

// size parses byte sizes: a bare integer, or with a KB/MB/GB/KiB/MiB/
// GiB suffix.
func (d *decoder) size(n *node, what string) int64 {
	s := d.scalar(n, what)
	if d.err != nil {
		return 0
	}
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		m   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9},
	} {
		if strings.HasSuffix(s, suf.tag) {
			s, mult = strings.TrimSpace(strings.TrimSuffix(s, suf.tag)), suf.m
			break
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		d.fail(n.line, "%s: %q is not a positive byte size (e.g. 64MiB, 2GB)", what, s)
		return 0
	}
	return v * mult
}

func (d *decoder) seeds(n *node) []int64 {
	if d.err != nil {
		return nil
	}
	if !n.isSeq {
		d.fail(n.line, "seeds must be a list of integers, e.g. [1, 2]")
		return nil
	}
	var out []int64
	seen := map[int64]bool{}
	for _, item := range n.items {
		s := d.scalar(item, "seed")
		if d.err != nil {
			return nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			d.fail(item.line, "seed %q is not an integer", s)
			return nil
		}
		if seen[v] {
			d.fail(item.line, "duplicate seed %d", v)
			return nil
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		d.fail(n.line, "seeds list must not be empty")
	}
	return out
}

func (d *decoder) scenario(root *node) *Scenario {
	d.checkKeys(root, "scenario", "name", "description", "app", "base",
		"target", "targets", "faults", "timeout", "assert")
	s := &Scenario{}
	if n := root.get("name"); n != nil {
		s.Name = d.str(n, "name")
		if d.err == nil && !validName(s.Name) {
			d.fail(n.line, "name %q must match [a-z0-9._-]+", s.Name)
		}
	} else {
		d.fail(root.line, "scenario needs a name")
	}
	if n := root.get("description"); n != nil {
		s.Description = d.scalar(n, "description")
	}
	if n := root.get("app"); n != nil {
		s.App = d.app(n)
	} else {
		d.fail(root.line, "scenario needs an app block")
	}
	if n := root.get("base"); n != nil {
		s.Base = d.machine(n)
	} else {
		d.fail(root.line, "scenario needs a base machine block")
	}
	tgt, tgts := root.get("target"), root.get("targets")
	switch {
	case tgt != nil && tgts != nil:
		d.fail(tgts.line, "give either target or targets, not both")
	case tgt != nil:
		s.Targets = []MachineSpec{d.machine(tgt)}
	case tgts != nil:
		s.Targets = d.targets(tgts)
	default:
		d.fail(root.line, "scenario needs a target (or targets) block")
	}
	if n := root.get("faults"); n != nil {
		s.Faults = d.faults(n)
	}
	if n := root.get("timeout"); n != nil {
		s.Timeout = d.duration(n, "timeout")
	}
	if n := root.get("assert"); n != nil {
		s.Assert = d.assertions(n)
	} else {
		d.fail(root.line, "scenario needs an assert block (a scenario that checks nothing tests nothing)")
	}
	if d.err != nil {
		return nil
	}
	// Cross-field semantics.
	if s.Assert.RecoveryInvariant && s.Faults == nil {
		d.fail(root.line, "recovery_invariant requires a faults block (there is nothing to recover from)")
	}
	if s.Assert.count() == 0 {
		d.fail(root.get("assert").line, "assert block configures no assertion")
	}
	// Target labels must be unique so case IDs (and the results doc)
	// are unambiguous.
	seen := map[string]bool{}
	for i := range s.Targets {
		l := s.Targets[i].Label()
		if seen[l] {
			d.fail(s.Targets[i].line, "duplicate target %q", l)
		}
		seen[l] = true
	}
	if d.err != nil {
		return nil
	}
	return s
}

func validName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return s != ""
}

func (d *decoder) app(n *node) AppRef {
	if d.err != nil {
		return AppRef{}
	}
	if !n.isMap {
		d.fail(n.line, "app must be a block with name/ranks/workload")
		return AppRef{}
	}
	d.checkKeys(n, "app", "name", "ranks", "workload")
	var a AppRef
	if c := n.get("name"); c != nil {
		a.Name = d.str(c, "app name")
	} else {
		d.fail(n.line, "app needs a name")
	}
	if c := n.get("ranks"); c != nil {
		a.Ranks = d.integer(c, "app ranks")
		if d.err == nil && (a.Ranks < 2 || a.Ranks > maxRanks) {
			d.fail(c.line, "app ranks %d outside [2, %d]", a.Ranks, maxRanks)
		}
	} else {
		d.fail(n.line, "app needs a ranks count")
	}
	if c := n.get("workload"); c != nil {
		a.Workload = d.str(c, "app workload")
	}
	if d.err != nil {
		return AppRef{}
	}
	// Instantiating validates the app name, the workload name and the
	// rank count against the registry without running anything.
	if _, err := apps.Make(a.Name, a.Ranks, a.Workload); err != nil {
		d.fail(n.line, "%v", err)
	}
	return a
}

func (d *decoder) machine(n *node) MachineSpec {
	if d.err != nil {
		return MachineSpec{}
	}
	m := NewMachineSpec("")
	m.line = n.line
	if !n.isMap {
		// Shorthand: `target: B` names a preset with default knobs.
		m.Cluster = d.str(n, "machine")
		if d.err == nil {
			d.validateMachine(n.line, &m)
		}
		return m
	}
	d.checkKeys(n, "machine", "cluster", "cores", "mapping", "nodes",
		"cores_per_node", "gflops", "mem_contention", "interconnect")
	if c := n.get("cluster"); c != nil {
		m.Cluster = d.str(c, "cluster")
	} else {
		d.fail(n.line, "machine block needs a cluster preset name")
	}
	if c := n.get("cores"); c != nil {
		m.Cores = d.integer(c, "cores")
		if d.err == nil && m.Cores <= 0 {
			d.fail(c.line, "cores must be positive")
		}
	}
	if c := n.get("mapping"); c != nil {
		m.Mapping = d.str(c, "mapping")
		if d.err == nil && m.Mapping != "block" && m.Mapping != "cyclic" {
			d.fail(c.line, "mapping %q must be block or cyclic", m.Mapping)
		}
	}
	if c := n.get("nodes"); c != nil {
		m.Nodes = d.integer(c, "nodes")
		if d.err == nil && m.Nodes <= 0 {
			d.fail(c.line, "nodes must be positive")
		}
	}
	if c := n.get("cores_per_node"); c != nil {
		m.CoresPerNode = d.integer(c, "cores_per_node")
		if d.err == nil && m.CoresPerNode <= 0 {
			d.fail(c.line, "cores_per_node must be positive")
		}
	}
	if c := n.get("gflops"); c != nil {
		m.GFLOPS = d.float(c, "gflops")
		if d.err == nil && m.GFLOPS <= 0 {
			d.fail(c.line, "gflops must be positive")
		}
	}
	if c := n.get("mem_contention"); c != nil {
		m.MemContention = d.float(c, "mem_contention")
		if d.err == nil && m.MemContention < 0 {
			d.fail(c.line, "mem_contention must be non-negative")
		}
	}
	if c := n.get("interconnect"); c != nil {
		m.Interconnect = d.str(c, "interconnect")
	}
	if d.err == nil {
		d.validateMachine(n.line, &m)
	}
	return m
}

// validateMachine materialises the model once at parse time so bad
// presets and overrides fail with a position.
func (d *decoder) validateMachine(line int, m *MachineSpec) {
	if _, err := m.cluster(); err != nil {
		d.fail(line, "%v", err)
	}
}

func (d *decoder) targets(n *node) []MachineSpec {
	if d.err != nil {
		return nil
	}
	if !n.isSeq {
		d.fail(n.line, "targets must be a list of cluster preset names (use target: for a single model with overrides)")
		return nil
	}
	var out []MachineSpec
	for _, item := range n.items {
		m := NewMachineSpec(d.str(item, "target cluster"))
		m.line = item.line
		if d.err != nil {
			return nil
		}
		d.validateMachine(item.line, &m)
		out = append(out, m)
	}
	if len(out) == 0 {
		d.fail(n.line, "targets list must not be empty")
	}
	return out
}

func (d *decoder) faults(n *node) *FaultPlan {
	if d.err != nil {
		return nil
	}
	if !n.isMap {
		d.fail(n.line, "faults must be a block with spec/seeds")
		return nil
	}
	d.checkKeys(n, "faults", "spec", "seeds")
	p := &FaultPlan{Seeds: []int64{1}}
	if c := n.get("spec"); c != nil {
		p.Spec = d.str(c, "fault spec")
		if d.err == nil {
			if cfg, err := faults.ParseConfig(p.Spec); err != nil {
				d.fail(c.line, "%v", err)
			} else if cfg == (faults.Config{}) {
				d.fail(c.line, "fault spec %q enables no fault class", p.Spec)
			}
		}
	} else {
		d.fail(n.line, "faults block needs a spec")
	}
	if c := n.get("seeds"); c != nil {
		p.Seeds = d.seeds(c)
	}
	if d.err != nil {
		return nil
	}
	return p
}

func (d *decoder) assertions(n *node) Assertions {
	if d.err != nil {
		return Assertions{}
	}
	if !n.isMap {
		d.fail(n.line, "assert must be a block of assertion: bound entries")
		return Assertions{}
	}
	d.checkKeys(n, "assertion", "pete_bound", "phases_min", "phases_max",
		"relevant_min", "coverage_min", "recovery_invariant", "determinism",
		"max_wall", "max_alloc")
	var a Assertions
	if c := n.get("pete_bound"); c != nil {
		a.PETEBound, a.HasPETEBound = d.float(c, "pete_bound"), true
		if d.err == nil && (a.PETEBound < 0 || a.PETEBound > 100) {
			d.fail(c.line, "pete_bound %g%% outside [0, 100]", a.PETEBound)
		}
	}
	if c := n.get("phases_min"); c != nil {
		a.PhasesMin, a.HasPhasesMin = d.integer(c, "phases_min"), true
		if d.err == nil && a.PhasesMin < 1 {
			d.fail(c.line, "phases_min must be at least 1")
		}
	}
	if c := n.get("phases_max"); c != nil {
		a.PhasesMax, a.HasPhasesMax = d.integer(c, "phases_max"), true
		if d.err == nil && a.PhasesMax < 1 {
			d.fail(c.line, "phases_max must be at least 1")
		}
	}
	if d.err == nil && a.HasPhasesMin && a.HasPhasesMax && a.PhasesMin > a.PhasesMax {
		d.fail(n.line, "phases_min %d exceeds phases_max %d", a.PhasesMin, a.PhasesMax)
	}
	if c := n.get("relevant_min"); c != nil {
		a.RelevantMin, a.HasRelevantMin = d.integer(c, "relevant_min"), true
		if d.err == nil && a.RelevantMin < 1 {
			d.fail(c.line, "relevant_min must be at least 1")
		}
	}
	if c := n.get("coverage_min"); c != nil {
		a.CoverageMin, a.HasCoverageMin = d.float(c, "coverage_min"), true
		if d.err == nil && (a.CoverageMin <= 0 || a.CoverageMin > 1) {
			d.fail(c.line, "coverage_min %g outside (0, 1]", a.CoverageMin)
		}
	}
	if c := n.get("recovery_invariant"); c != nil {
		a.RecoveryInvariant = d.boolean(c, "recovery_invariant")
	}
	if c := n.get("determinism"); c != nil {
		a.Determinism = d.boolean(c, "determinism")
	}
	if c := n.get("max_wall"); c != nil {
		a.MaxWall = d.duration(c, "max_wall")
	}
	if c := n.get("max_alloc"); c != nil {
		a.MaxAllocBytes = d.size(c, "max_alloc")
	}
	return a
}

// LoadFile parses one scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// LoadDir loads every *.yaml scenario in a directory in name order and
// rejects duplicate scenario names (case IDs must be unambiguous
// across a campaign).
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: no *.yaml scenarios in %s", dir)
	}
	var out []*Scenario
	byName := map[string]string{}
	for _, name := range names {
		s, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("scenario: %s: duplicate scenario name %q (also defined in %s)", s.File, s.Name, prev)
		}
		byName[s.Name] = s.File
		out = append(out, s)
	}
	return out, nil
}

// Load resolves a path to scenarios: a directory is a campaign, a file
// is a single scenario.
func Load(path string) ([]*Scenario, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return LoadDir(path)
	}
	s, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return []*Scenario{s}, nil
}
