package scenario

import (
	"strings"
	"testing"
)

// TestParseTreeShape: a document exercising every supported construct
// parses into the expected node tree.
func TestParseTreeShape(t *testing.T) {
	doc := `---
# campaign header comment
name: demo  # trailing comment
description: 'it''s quoted'
note: "line\nbreak # not a comment"
app:
  name: cg
  ranks: 8
list: [a, 'b b', "c"]
seq:
  - one
  - two
`
	root, err := parseTree("t.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !root.isMap || len(root.entries) != 6 {
		t.Fatalf("root: isMap=%v entries=%d", root.isMap, len(root.entries))
	}
	if got := root.get("name").scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := root.get("description").scalar; got != "it's quoted" {
		t.Errorf("description = %q", got)
	}
	if got := root.get("note").scalar; got != "line\nbreak # not a comment" {
		t.Errorf("note = %q", got)
	}
	app := root.get("app")
	if !app.isMap || app.get("ranks").scalar != "8" {
		t.Errorf("app block wrong: %+v", app)
	}
	list := root.get("list")
	if !list.isSeq || len(list.items) != 3 || list.items[1].scalar != "b b" {
		t.Errorf("inline list wrong: %+v", list)
	}
	seq := root.get("seq")
	if !seq.isSeq || len(seq.items) != 2 || seq.items[1].scalar != "two" {
		t.Errorf("block sequence wrong: %+v", seq)
	}
	// Positions: `name` is on line 3 of the source.
	if root.entries[0].keyLine != 3 {
		t.Errorf("name keyLine = %d, want 3", root.entries[0].keyLine)
	}
}

// TestParseTreeRejects: every unsupported or malformed construct fails
// with a positioned error on the offending line.
func TestParseTreeRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		line int
		msg  string
	}{
		{"empty", "", 1, "empty scenario document"},
		{"comment only", "# nothing\n", 1, "empty scenario document"},
		{"tab indent", "a: 1\n\tb: 2\n", 2, "tab character"},
		{"tab content", "a: x\ty\n", 1, "tab character"},
		{"top-level sequence", "- a\n- b\n", 1, "must be a mapping"},
		{"multi-doc", "---\na: 1\n---\nb: 2\n", 3, "multi-document"},
		{"duplicate key", "a: 1\nb: 2\na: 3\n", 3, `duplicate key "a"`},
		{"key without value", "a: 1\nb:\n", 2, "has no value"},
		{"bare scalar line", "a: 1\njust words\n", 2, "key: value"},
		{"quoted key", "'a': 1\n", 1, "quoted mapping keys"},
		{"inconsistent indent", "a:\n    b: 1\n  c: 2\n", 3, "inconsistent indentation"},
		{"over-indent in map", "a: 1\n  b: 2\n", 2, "inconsistent indentation"},
		{"seq item in map", "a: 1\n- b\n", 2, "sequence item where a mapping key"},
		{"nested seq block", "a:\n  - x\n    - y\n", 3, "nested blocks under '-'"},
		{"nested seq inline", "a:\n  - - y\n", 2, "nested sequences"},
		{"map in seq", "a:\n  - k: v\n", 2, "mapping items inside sequences"},
		{"empty seq item", "a:\n  -\n", 2, "empty sequence item"},
		{"flow map", "a: {k: v}\n", 1, "flow mappings"},
		{"anchor", "a: &x 1\n", 1, "anchors"},
		{"alias", "a: *x\n", 1, "anchors"},
		{"block scalar", "a: |\n", 1, "block scalars"},
		{"unclosed list", "a: [1, 2\n", 1, "not closed"},
		{"nested inline list", "a: [1, [2]]\n", 1, "nested inline lists"},
		{"empty list item", "a: [1, , 2]\n", 1, "empty item"},
		{"unterminated single quote", "a: 'x\n", 1, "unterminated single-quoted"},
		{"stray single quote", "a: 'x'y'\n", 1, "quote"},
		{"unterminated double quote", "a: \"x\n", 1, "unterminated double-quoted"},
		{"bad escape", `a: "x\q"` + "\n", 1, `unsupported escape`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTree("t.yaml", []byte(tc.doc))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.doc)
			}
			pe, ok := AsParseError(err)
			if !ok {
				t.Fatalf("error is not positioned: %v", err)
			}
			if pe.File != "t.yaml" {
				t.Errorf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (err: %v)", pe.Line, tc.line, err)
			}
			if !strings.Contains(pe.Msg, tc.msg) {
				t.Errorf("message %q does not mention %q", pe.Msg, tc.msg)
			}
		})
	}
}

// TestStripComment: '#' only starts a comment at the margin or after a
// space, and never inside quotes.
func TestStripComment(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a: b # c", "a: b"},
		{"# whole line", ""},
		{"a: b#c", "a: b#c"},
		{"a: 'b # c'", "a: 'b # c'"},
		{`a: "b # c" # d`, `a: "b # c"`},
		{"a: 'it''s # x' # y", "a: 'it''s # x'"},
	}
	for _, tc := range cases {
		if got := stripComment(tc.in); got != tc.want {
			t.Errorf("stripComment(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
