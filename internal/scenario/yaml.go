// Package scenario turns the repository's hand-chained CLI experiments
// (trace → analyze → predict → chaos) into a declarative, asserting
// test suite: a scenario file names an application, a base and one or
// more target machine models, an optional fault specification, and a
// set of assertions (prediction-error bound, expected phase counts,
// recovery invariant, determinism, wall/alloc budgets); a campaign runs
// a directory of scenarios as a sweep matrix (apps × machine models ×
// fault seeds) on a bounded worker pool and reports pass/fail as a
// table, a JSON results document, and JUnit XML for CI.
//
// Scenario files use a minimal YAML subset parsed by this file with no
// external dependency (the repository is zero-dep by policy):
//
//   - mappings (`key: value`, or `key:` introducing an indented block),
//   - sequences of scalars (`- item` lines, or inline `[a, b, c]`),
//   - plain / single-quoted / double-quoted scalars,
//   - `#` comments and blank lines.
//
// Anchors, aliases, multi-document streams, tabs, nested sequences and
// block scalars are rejected with positioned errors. Unknown keys are
// always errors — a typo like `pete_boundd:` fails validation instead
// of silently weakening a campaign.
package scenario

import (
	"errors"
	"fmt"
	"strings"
)

// ParseError is a positioned scenario-file error. Every failure of the
// parser and of the strict decoder carries the file name and 1-based
// line so tooling (and humans) can jump straight to the offending
// entry.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// errAt builds a positioned error.
func errAt(file string, line int, format string, args ...any) error {
	return &ParseError{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// AsParseError unwraps a ParseError, if any.
func AsParseError(err error) (*ParseError, bool) {
	var pe *ParseError
	ok := errors.As(err, &pe)
	return pe, ok
}

// node is one parsed YAML value: exactly one of mapping, sequence or
// scalar. Line is where the value starts (for mappings, the first key).
type node struct {
	line    int
	entries []mapEntry // mapping, in file order
	isMap   bool
	items   []*node // sequence
	isSeq   bool
	scalar  string // scalar (valid when !isMap && !isSeq)
	quoted  bool   // scalar came quoted (suppresses empty-value checks)
}

type mapEntry struct {
	key     string
	keyLine int
	val     *node
}

// get returns the value of a mapping key, or nil.
func (n *node) get(key string) *node {
	for i := range n.entries {
		if n.entries[i].key == key {
			return n.entries[i].val
		}
	}
	return nil
}

// logical is one significant source line.
type logical struct {
	indent int
	text   string // content with indent and comment stripped
	line   int    // 1-based source line
}

// parseTree parses a scenario document into a node tree. file is used
// only for error positioning.
func parseTree(file string, data []byte) (*node, error) {
	lines, err := splitLines(file, data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(file, 1, "empty scenario document")
	}
	p := &parser{file: file, lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(file, l.line, "unexpected content at indent %d (sibling of nothing)", l.indent)
	}
	if !root.isMap {
		return nil, errAt(file, root.line, "scenario document must be a mapping at the top level")
	}
	return root, nil
}

// splitLines strips comments and blanks, rejects tabs, and records
// indentation. A leading `---` document marker is skipped; a second one
// (multi-document stream) is rejected.
func splitLines(file string, data []byte) ([]logical, error) {
	var out []logical
	raw := strings.Split(string(data), "\n")
	sawDoc := false
	for i, ln := range raw {
		lineNo := i + 1
		ln = strings.TrimRight(ln, "\r")
		trimmed := strings.TrimLeft(ln, " ")
		if idx := strings.IndexByte(trimmed, '\t'); idx >= 0 || strings.ContainsRune(ln[:len(ln)-len(trimmed)], '\t') {
			return nil, errAt(file, lineNo, "tab character (use spaces)")
		}
		content := stripComment(trimmed)
		content = strings.TrimRight(content, " ")
		if content == "" {
			continue
		}
		if content == "---" {
			if sawDoc || len(out) > 0 {
				return nil, errAt(file, lineNo, "multi-document streams are not supported")
			}
			sawDoc = true
			continue
		}
		out = append(out, logical{indent: len(ln) - len(trimmed), text: content, line: lineNo})
	}
	return out, nil
}

// stripComment removes a trailing `# ...` comment. A '#' starts a
// comment when it is the first character or is preceded by a space and
// sits outside quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
					i++ // '' escape inside single quotes
					continue
				}
				if quote == '"' {
					// backslash escape inside double quotes
					if i > 0 && s[i-1] == '\\' {
						continue
					}
				}
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

type parser struct {
	file  string
	lines []logical
	pos   int
}

// parseBlock parses the run of lines at exactly the given indent into a
// mapping or sequence node.
func (p *parser) parseBlock(indent int) (*node, error) {
	if p.pos >= len(p.lines) {
		return nil, errAt(p.file, 0, "internal: parseBlock past end")
	}
	first := p.lines[p.pos]
	if first.indent != indent {
		return nil, errAt(p.file, first.line, "inconsistent indentation: got %d spaces, expected %d", first.indent, indent)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseSeq(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].line, isSeq: true}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errAt(p.file, l.line, "unexpected indentation inside sequence (nested blocks under '-' are not supported by the scenario subset)")
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break // sibling mapping key ends the sequence at same indent — invalid, caught by caller
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			return nil, errAt(p.file, l.line, "empty sequence item")
		}
		if strings.HasPrefix(rest, "- ") {
			return nil, errAt(p.file, l.line, "nested sequences are not supported by the scenario subset")
		}
		if isMapLine(rest) {
			return nil, errAt(p.file, l.line, "mapping items inside sequences are not supported by the scenario subset (use scalar items)")
		}
		item, err := parseScalarOrList(p.file, l.line, rest)
		if err != nil {
			return nil, err
		}
		if item.isSeq {
			return nil, errAt(p.file, l.line, "nested sequences are not supported by the scenario subset")
		}
		n.items = append(n.items, item)
		p.pos++
	}
	return n, nil
}

func (p *parser) parseMap(indent int) (*node, error) {
	n := &node{line: p.lines[p.pos].line, isMap: true}
	seen := map[string]int{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errAt(p.file, l.line, "inconsistent indentation: got %d spaces, expected %d", l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(p.file, l.line, "sequence item where a mapping key was expected")
		}
		key, rest, err := splitKey(p.file, l.line, l.text)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, errAt(p.file, l.line, "duplicate key %q (first defined on line %d)", key, prev)
		}
		seen[key] = l.line
		p.pos++
		var val *node
		if rest == "" {
			// Block value: the following lines at deeper indent.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				val, err = p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			} else {
				return nil, errAt(p.file, l.line, "key %q has no value (expected an inline scalar or an indented block)", key)
			}
		} else {
			val, err = parseScalarOrList(p.file, l.line, rest)
			if err != nil {
				return nil, err
			}
		}
		n.entries = append(n.entries, mapEntry{key: key, keyLine: l.line, val: val})
	}
	return n, nil
}

// isMapLine reports whether a line body looks like `key: ...`.
func isMapLine(s string) bool {
	_, _, err := splitKey("", 0, s)
	return err == nil
}

// splitKey splits `key: rest` at the first unquoted colon followed by a
// space or end of line.
func splitKey(file string, line int, s string) (key, rest string, err error) {
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") {
		return "", "", errAt(file, line, "quoted mapping keys are not supported by the scenario subset")
	}
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		if i+1 == len(s) {
			return strings.TrimSpace(s[:i]), "", nil
		}
		if s[i+1] == ' ' {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", errAt(file, line, "expected `key: value`, got %q", s)
}

// parseScalarOrList parses an inline value: a flow list `[a, b]` or a
// scalar.
func parseScalarOrList(file string, line int, s string) (*node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, errAt(file, line, "inline list %q is not closed", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		n := &node{line: line, isSeq: true}
		if inner == "" {
			return n, nil
		}
		items, err := splitFlowItems(file, line, inner)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			sc, err := parseScalar(file, line, it)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, sc)
		}
		return n, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, errAt(file, line, "inline flow mappings are not supported by the scenario subset")
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, errAt(file, line, "anchors, aliases and block scalars are not supported by the scenario subset")
	}
	return parseScalar(file, line, s)
}

// splitFlowItems splits the interior of an inline list on unquoted
// commas.
func splitFlowItems(file string, line int, s string) ([]string, error) {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote && !(quote == '"' && i > 0 && s[i-1] == '\\') {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == ']':
			return nil, errAt(file, line, "nested inline lists are not supported by the scenario subset")
		case c == ',':
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, errAt(file, line, "unterminated quote in inline list")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	for _, it := range out {
		if it == "" {
			return nil, errAt(file, line, "empty item in inline list")
		}
	}
	return out, nil
}

// parseScalar unquotes a scalar value.
func parseScalar(file string, line int, s string) (*node, error) {
	switch {
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, errAt(file, line, "unterminated single-quoted scalar %q", s)
		}
		body := s[1 : len(s)-1]
		if strings.Contains(strings.ReplaceAll(body, "''", ""), "'") {
			return nil, errAt(file, line, "stray quote inside single-quoted scalar %q", s)
		}
		return &node{line: line, scalar: strings.ReplaceAll(body, "''", "'"), quoted: true}, nil
	case strings.HasPrefix(s, "\""):
		if len(s) < 2 || !strings.HasSuffix(s, "\"") || strings.HasSuffix(s, "\\\"") {
			return nil, errAt(file, line, "unterminated double-quoted scalar %q", s)
		}
		body := s[1 : len(s)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			if body[i] != '\\' {
				b.WriteByte(body[i])
				continue
			}
			i++
			if i == len(body) {
				return nil, errAt(file, line, "dangling escape in %q", s)
			}
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(body[i])
			default:
				return nil, errAt(file, line, "unsupported escape \\%c in %q", body[i], s)
			}
		}
		return &node{line: line, scalar: b.String(), quoted: true}, nil
	default:
		return &node{line: line, scalar: s}, nil
	}
}
