package scenario

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// PrintTable renders the campaign's pass/fail results table, with one
// indented line per violated check so a failing CI log names the
// scenario, the assertion and the measured value without opening the
// JSON document.
func PrintTable(w io.Writer, d *Doc) {
	fmt.Fprintf(w, "%-52s %-8s %-10s %-8s %s\n",
		"CASE", "STATUS", "PETE", "PHASES", "WALL")
	for i := range d.Cases {
		r := &d.Cases[i]
		pete := "-"
		if r.PETEPercent != nil {
			pete = fmt.Sprintf("%.2f%%", *r.PETEPercent)
		}
		phases := fmt.Sprintf("%d/%d", r.Relevant, r.Phases)
		fmt.Fprintf(w, "%-52s %-8s %-10s %-8s %.1fs\n",
			r.ID, strings.ToUpper(r.Status), pete, phases,
			float64(r.WallMS)/1e3)
		if r.Error != "" {
			// A panic's stack is in the JSON/JUnit output; the table
			// keeps its first line.
			msg := r.Error
			if i := strings.IndexByte(msg, '\n'); i >= 0 {
				msg = msg[:i]
			}
			fmt.Fprintf(w, "    %s\n", msg)
		}
		for _, c := range r.Failures() {
			fmt.Fprintf(w, "    %s\n", c)
		}
	}
	fmt.Fprintf(w, "\n%d scenarios, %d cases: %d passed, %d failed (%.1fs)\n",
		d.Scenarios, len(d.Cases), d.Passed, d.Failed, float64(d.WallMS)/1e3)
}

// WriteJSON writes the canonical results document: wall-clock and
// allocation fields are zeroed so the same campaign produces
// byte-identical output on every run.
func WriteJSON(w io.Writer, d *Doc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d.Canonical())
}

// JUnit XML document model (the subset CI services consume).
type junitSuites struct {
	XMLName  xml.Name     `xml:"testsuites"`
	Tests    int          `xml:"tests,attr"`
	Failures int          `xml:"failures,attr"`
	Suites   []junitSuite `xml:"testsuite"`
}

type junitSuite struct {
	Name     string      `xml:"name,attr"`
	Tests    int         `xml:"tests,attr"`
	Failures int         `xml:"failures,attr"`
	Time     string      `xml:"time,attr"`
	Cases    []junitCase `xml:"testcase"`
}

type junitCase struct {
	Name      string        `xml:"name,attr"`
	ClassName string        `xml:"classname,attr"`
	Time      string        `xml:"time,attr"`
	Failures  []junitDetail `xml:"failure,omitempty"`
	Errors    []junitDetail `xml:"error,omitempty"`
}

type junitDetail struct {
	Message string `xml:"message,attr"`
	Body    string `xml:",chardata"`
}

// WriteJUnit writes the campaign as JUnit XML: one testsuite per
// scenario, one testcase per matrix cell. Violated assertions become
// <failure> elements naming the assertion and the measured value;
// pipeline errors, timeouts and panics become <error> elements.
func WriteJUnit(w io.Writer, d *Doc) error {
	bySuite := map[string]*junitSuite{}
	var order []string
	for i := range d.Cases {
		r := &d.Cases[i]
		s, ok := bySuite[r.Scenario]
		if !ok {
			s = &junitSuite{Name: "scenario/" + r.Scenario}
			bySuite[r.Scenario] = s
			order = append(order, r.Scenario)
		}
		jc := junitCase{
			Name:      r.ID,
			ClassName: r.App,
			Time:      fmt.Sprintf("%.3f", float64(r.WallMS)/1e3),
		}
		switch r.Status {
		case StatusPass:
		case StatusFail:
			for _, c := range r.Failures() {
				jc.Failures = append(jc.Failures, junitDetail{
					Message: fmt.Sprintf("%s: got %s, want %s", c.Assertion, c.Got, c.Want),
					Body:    c.String(),
				})
			}
		default: // error, timeout, panic
			jc.Errors = append(jc.Errors, junitDetail{
				Message: r.Status,
				Body:    r.Error,
			})
		}
		s.Cases = append(s.Cases, jc)
		s.Tests++
		if r.Status != StatusPass {
			s.Failures++
		}
	}
	doc := junitSuites{Tests: len(d.Cases), Failures: d.Failed}
	for _, name := range order {
		s := bySuite[name]
		var suiteMS int64
		for i := range d.Cases {
			if d.Cases[i].Scenario == name {
				suiteMS += d.Cases[i].WallMS
			}
		}
		s.Time = fmt.Sprintf("%.3f", float64(suiteMS)/1e3)
		doc.Suites = append(doc.Suites, *s)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
