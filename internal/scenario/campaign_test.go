package scenario

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/vtime"
)

// fastScenario is a quick real pipeline case (a masterworker run takes
// a few milliseconds end to end).
const fastScenario = `name: fast
app:
  name: masterworker
  ranks: 8
base: A
target: B
assert:
  pete_bound: 5.0
  phases_min: 1
`

// violatedScenario intentionally sets the PETE bound below BT's real
// prediction error (~1.8% A->B), the acceptance criterion's canonical
// failing campaign.
const violatedScenario = `name: tight
app:
  name: bt
  ranks: 8
base: A
target: B
assert:
  pete_bound: 0.5
`

func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := Parse("test.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCampaignPasses: a satisfiable suite passes every case and the
// observer sees the campaign counters.
func TestCampaignPasses(t *testing.T) {
	o := obs.New()
	doc, err := Run([]*Scenario{mustParse(t, fastScenario)}, Options{Workers: 1, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failed != 0 || doc.Passed != 1 || len(doc.Cases) != 1 {
		t.Fatalf("doc: %+v", doc)
	}
	r := doc.Cases[0]
	if r.Status != StatusPass || r.PETEPercent == nil || r.Phases < 1 {
		t.Fatalf("case: %+v", r)
	}
	counters := o.Registry.Snapshot().Counters
	if counters["scenario.cases_total"] != 1 || counters["scenario.cases_passed"] != 1 {
		t.Errorf("campaign counters wrong: %v", counters)
	}
	if counters["scenario.assertions_checked"] != 2 {
		t.Errorf("assertions_checked = %d, want 2", counters["scenario.assertions_checked"])
	}
}

// TestCampaignViolatedAssertion pins the acceptance criterion: an
// intentionally violated bound fails the campaign, and the report
// names the scenario, the assertion, and the measured value.
func TestCampaignViolatedAssertion(t *testing.T) {
	doc, err := Run([]*Scenario{mustParse(t, violatedScenario)}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failed != 1 {
		t.Fatalf("campaign did not fail: %+v", doc)
	}
	r := doc.Cases[0]
	if r.Status != StatusFail {
		t.Fatalf("status = %q", r.Status)
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Assertion != "pete_bound" {
		t.Fatalf("failures: %+v", fails)
	}
	if !strings.Contains(fails[0].Got, "PETE") {
		t.Errorf("failure lacks the measured value: %+v", fails[0])
	}
	// The rendered table carries scenario, assertion and measurement.
	var buf bytes.Buffer
	PrintTable(&buf, doc)
	out := buf.String()
	for _, want := range []string{"tight/target=B", "FAIL", "pete_bound", "PETE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output lacks %q:\n%s", want, out)
		}
	}
}

// TestCampaignJSONDeterministic pins the acceptance criterion: the
// same scenario set produces a byte-identical canonical JSON document
// on every run, at any worker count.
func TestCampaignJSONDeterministic(t *testing.T) {
	chaos := `name: det
app:
  name: masterworker
  ranks: 8
base: A
targets: [B, C]
faults:
  spec: loss=0.05,delay=0.1
  seeds: [1, 2]
assert:
  phases_min: 1
  determinism: true
`
	render := func(workers int) string {
		doc, err := Run([]*Scenario{mustParse(t, chaos), mustParse(t, fastScenario)},
			Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, doc); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := render(1)
	again := render(1)
	wide := render(4)
	if one != again {
		t.Fatalf("same campaign, different JSON:\n%s\nvs\n%s", one, again)
	}
	if one != wide {
		t.Fatalf("worker count changed the JSON document:\n%s\nvs\n%s", one, wide)
	}
	if strings.Contains(one, `"wall_ms": 1`) {
		t.Error("canonical document leaked a wall-clock value")
	}
}

// TestCampaignPanicIsolation: a panicking case must not take the
// runner down; it reports StatusPanic with the stack, and the other
// cases still run.
func TestCampaignPanicIsolation(t *testing.T) {
	orig := evalCaseFn
	defer func() { evalCaseFn = orig }()
	evalCaseFn = func(c Case, o *obs.Observer) CaseResult {
		if c.Scenario.Name == "fast" {
			panic("synthetic failure")
		}
		return orig(c, o)
	}
	ok := strings.Replace(strings.Replace(fastScenario, "name: fast", "name: ok", 1),
		"pete_bound: 5.0", "pete_bound: 99", 1)
	doc, err := Run([]*Scenario{mustParse(t, fastScenario), mustParse(t, ok)},
		Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failed != 1 || doc.Passed != 1 {
		t.Fatalf("doc: passed %d failed %d", doc.Passed, doc.Failed)
	}
	var panicked *CaseResult
	for i := range doc.Cases {
		if doc.Cases[i].Scenario == "fast" {
			panicked = &doc.Cases[i]
		}
	}
	if panicked == nil || panicked.Status != StatusPanic {
		t.Fatalf("panic case: %+v", panicked)
	}
	if !strings.Contains(panicked.Error, "synthetic failure") ||
		!strings.Contains(panicked.Error, "campaign.go") {
		t.Errorf("panic error lacks message or stack: %q", panicked.Error)
	}
}

// TestCampaignTimeout: a case exceeding its wall budget reports
// StatusTimeout and fails the campaign.
func TestCampaignTimeout(t *testing.T) {
	orig := evalCaseFn
	defer func() { evalCaseFn = orig }()
	evalCaseFn = func(c Case, o *obs.Observer) CaseResult {
		time.Sleep(5 * time.Second)
		return orig(c, o)
	}
	doc, err := Run([]*Scenario{mustParse(t, fastScenario)},
		Options{Workers: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Cases[0]
	if r.Status != StatusTimeout || doc.Failed != 1 {
		t.Fatalf("case: %+v", r)
	}
	if !strings.Contains(r.Error, "wall budget") {
		t.Errorf("timeout error: %q", r.Error)
	}
	// The scenario's own timeout overrides the campaign default.
	slow := mustParse(t, fastScenario+"timeout: 40ms\n")
	doc, err = Run([]*Scenario{slow}, Options{Workers: 1, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Cases[0].Status != StatusTimeout {
		t.Fatalf("scenario timeout not honoured: %+v", doc.Cases[0])
	}
}

// TestWriteJUnit: the XML parses, counts match, and a violated
// assertion surfaces as a <failure> naming assertion and measurement.
func TestWriteJUnit(t *testing.T) {
	doc, err := Run([]*Scenario{mustParse(t, violatedScenario), mustParse(t,
		strings.Replace(fastScenario, "name: fast", "name: good", 1))},
		Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJUnit(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Tests    int `xml:"tests,attr"`
		Failures int `xml:"failures,attr"`
		Suites   []struct {
			Name  string `xml:"name,attr"`
			Cases []struct {
				Name     string `xml:"name,attr"`
				Failures []struct {
					Message string `xml:"message,attr"`
				} `xml:"failure"`
			} `xml:"testcase"`
		} `xml:"testsuite"`
	}
	if err := xml.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("JUnit output does not parse: %v\n%s", err, buf.String())
	}
	if parsed.Tests != 2 || parsed.Failures != 1 || len(parsed.Suites) != 2 {
		t.Fatalf("junit counts: %+v", parsed)
	}
	var failMsg string
	for _, s := range parsed.Suites {
		for _, c := range s.Cases {
			for _, f := range c.Failures {
				failMsg = f.Message
			}
		}
	}
	if !strings.Contains(failMsg, "pete_bound") || !strings.Contains(failMsg, "PETE") {
		t.Errorf("failure message lacks assertion/measurement: %q", failMsg)
	}
}

// TestCoverage: the coverage metric is the relevant rows' Eq. 1 mass
// over the base AET.
func TestCoverage(t *testing.T) {
	sec := func(s float64) vtime.Duration { return vtime.Duration(s * 1e9) }
	tb := &phase.Table{
		BaseAET: sec(100),
		Rows: []phase.TableRow{
			{PhaseID: 1, Weight: 10, PhaseET: sec(8), Relevant: true}, // 80s
			{PhaseID: 2, Weight: 1, PhaseET: sec(15), Relevant: false},
			{PhaseID: 3, Weight: 5, PhaseET: sec(1), Relevant: true}, // 5s
		},
	}
	if got := coverage(tb); got < 0.849 || got > 0.851 {
		t.Errorf("coverage = %v, want 0.85", got)
	}
	if coverage(nil) != 0 || coverage(&phase.Table{}) != 0 {
		t.Error("degenerate tables must report zero coverage")
	}
}

// TestRunEmptyCampaign: a campaign needs scenarios.
func TestRunEmptyCampaign(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty campaign accepted")
	}
}
