package scenario

import (
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pas2p/internal/faults"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/predict"
	"pas2p/internal/vtime"
)

// eventOverhead is the per-event instrumentation cost charged during
// traced runs, matching `pas2p predict` so scenario bounds calibrated
// against the CLI hold in campaigns.
const eventOverhead = 8 * vtime.Microsecond

// defaultTimeout bounds a case that sets no scenario timeout.
const defaultTimeout = 2 * time.Minute

// recoveryEnvelope is the allowed fractional PET drift under a fully
// recovered fault schedule when the phase table carries an ETScale
// pair-bias correction (a physically measured ratio that jitter
// legitimately wobbles); without scaled rows the invariant is
// bit-identity. Mirrors the root chaos property test.
const recoveryEnvelope = 0.05

// Options configure a campaign run.
type Options struct {
	// Workers bounds concurrent cases (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-case wall budget for scenarios that set none
	// (0 = 2 minutes).
	Timeout time.Duration
	// Observer, when non-nil, receives scenario.* counters, a
	// "scenario.case" span per case, and the predict pipeline's own
	// spans/metrics — the seam `pas2p scenario run -serve` exposes.
	Observer *obs.Observer
	// Log, when non-nil, receives one progress line per finished case.
	Log func(format string, args ...any)
}

// Check is one assertion's verdict on one case.
type Check struct {
	Assertion string `json:"assertion"`
	OK        bool   `json:"ok"`
	// Got is the measured value, Want the bound it was held against.
	Got  string `json:"got"`
	Want string `json:"want"`
	// Detail carries context (e.g. why an invariant was vacuous).
	Detail string `json:"detail,omitempty"`
}

func (c Check) String() string {
	verdict := "ok"
	if !c.OK {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("%s: %s (got %s, want %s)", c.Assertion, verdict, c.Got, c.Want)
	if c.Detail != "" {
		s += " — " + c.Detail
	}
	return s
}

// Case statuses. A case passes only with StatusPass; everything else
// fails the campaign.
const (
	StatusPass    = "pass"
	StatusFail    = "fail"    // an assertion was violated
	StatusError   = "error"   // the pipeline itself errored
	StatusTimeout = "timeout" // the case exceeded its wall budget
	StatusPanic   = "panic"   // the pipeline panicked (isolated)
)

// CaseResult is one matrix cell's outcome.
type CaseResult struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	File     string `json:"file"`
	App      string `json:"app"`
	Ranks    int    `json:"ranks"`
	Base     string `json:"base"`
	Target   string `json:"target"`
	Seed     *int64 `json:"seed,omitempty"` // nil for fault-free cases
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`

	// Measured pipeline outputs (zero when the pipeline errored).
	PETSeconds  float64  `json:"pet_seconds"`
	SETSeconds  float64  `json:"set_seconds"`
	AETSeconds  float64  `json:"aet_seconds,omitempty"` // 0 when ground truth skipped
	PETEPercent *float64 `json:"pete_percent,omitempty"`
	Phases      int      `json:"phases"`
	Relevant    int      `json:"relevant"`
	Degraded    bool     `json:"degraded,omitempty"`

	Checks []Check `json:"checks,omitempty"`

	// Wall-clock fields, zeroed by Canonical (non-deterministic).
	WallMS     int64 `json:"wall_ms"`
	AllocBytes int64 `json:"alloc_bytes"`
}

// Failures lists the case's violated checks.
func (r *CaseResult) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Doc is the campaign's JSON results document.
type Doc struct {
	Scenarios int          `json:"scenarios"`
	Cases     []CaseResult `json:"cases"`
	Passed    int          `json:"passed"`
	Failed    int          `json:"failed"`
	// WallMS is the whole campaign's wall clock, zeroed by Canonical.
	WallMS int64 `json:"wall_ms"`
}

// Canonical returns a deep copy with every wall-clock/allocation field
// zeroed: two runs of the same campaign agree byte-for-byte on the
// canonical document (the runner is deterministic; only timing is not).
func (d *Doc) Canonical() *Doc {
	out := *d
	out.WallMS = 0
	out.Cases = make([]CaseResult, len(d.Cases))
	copy(out.Cases, d.Cases)
	for i := range out.Cases {
		out.Cases[i].WallMS = 0
		out.Cases[i].AllocBytes = 0
	}
	return &out
}

// Run executes every case of every scenario on a bounded worker pool
// with per-case timeouts and panic isolation. The returned document
// lists cases in deterministic matrix order (scenario file order ×
// targets × seeds) regardless of worker scheduling. The error is
// non-nil only for campaign-level problems (no scenarios); assertion
// failures are reported in the document, not as an error.
func Run(scenarios []*Scenario, opts Options) (*Doc, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("scenario: campaign has no scenarios")
	}
	var cases []Case
	for _, s := range scenarios {
		cases = append(cases, s.Cases()...)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	o := opts.Observer
	if reg := o.Reg(); reg != nil {
		reg.Gauge("scenario.workers").Set(float64(workers))
		reg.Counter("scenario.cases_total").Add(int64(len(cases)))
	}

	start := time.Now()
	results := make([]CaseResult, len(cases))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cases) {
					return
				}
				results[i] = runCase(cases[i], opts)
				if opts.Log != nil {
					r := &results[i]
					opts.Log("%-6s %s (%.1fs)", r.Status, r.ID,
						float64(r.WallMS)/1e3)
				}
			}
		}()
	}
	wg.Wait()

	doc := &Doc{
		Scenarios: len(scenarios),
		Cases:     results,
		WallMS:    time.Since(start).Milliseconds(),
	}
	for i := range results {
		if results[i].Status == StatusPass {
			doc.Passed++
		} else {
			doc.Failed++
		}
	}
	if reg := o.Reg(); reg != nil {
		reg.Counter("scenario.cases_passed").Add(int64(doc.Passed))
		reg.Counter("scenario.cases_failed").Add(int64(doc.Failed))
	}
	return doc, nil
}

// runCase evaluates one case under its wall budget, isolating panics.
// The evaluation runs on its own goroutine; on timeout that goroutine
// is abandoned (it holds no locks shared with the runner) and the case
// reports StatusTimeout.
func runCase(c Case, opts Options) CaseResult {
	timeout := c.Scenario.Timeout
	if timeout == 0 {
		timeout = opts.Timeout
	}
	if timeout == 0 {
		timeout = defaultTimeout
	}
	res := newCaseResult(c)
	o := opts.Observer
	sp := o.StartSpan("scenario.case")
	defer sp.End()

	done := make(chan CaseResult, 1)
	// Capture the evaluator before spawning: a timed-out case's
	// goroutine is abandoned, and it must not read the package
	// variable after a test has restored it.
	eval := evalCaseFn
	go func() {
		defer func() {
			if p := recover(); p != nil {
				r := newCaseResult(c)
				r.Status = StatusPanic
				r.Error = fmt.Sprintf("panic: %v\n%s", p, debug.Stack())
				done <- r
			}
		}()
		done <- eval(c, o)
	}()
	start := time.Now()
	select {
	case r := <-done:
		res = r
	case <-time.After(timeout):
		res.Status = StatusTimeout
		res.Error = fmt.Sprintf("case exceeded its %v wall budget", timeout)
	}
	res.WallMS = time.Since(start).Milliseconds()
	sp.SetCounter("checks", int64(len(res.Checks)))
	if reg := o.Reg(); reg != nil {
		reg.Counter("scenario.assertions_checked").Add(int64(len(res.Checks)))
		reg.Counter("scenario.assertions_failed").Add(int64(len(res.Failures())))
	}
	return res
}

func newCaseResult(c Case) CaseResult {
	r := CaseResult{
		ID:       c.ID(),
		Scenario: c.Scenario.Name,
		File:     c.Scenario.File,
		App:      c.Scenario.App.Name,
		Ranks:    c.Scenario.App.Ranks,
		Base:     c.Scenario.Base.Label(),
		Target:   c.Target.Label(),
		Status:   StatusError,
	}
	if c.Scenario.Faults != nil {
		seed := c.Seed
		r.Seed = &seed
	}
	return r
}

// caseRun holds one pipeline execution's comparable outputs.
type caseRun struct {
	out *predict.Outcome
	rep faults.Report
}

// execute runs the case's prediction pipeline once. A nil-faults run
// with skipAET true is also the recovery invariant's reference.
func (c Case) execute(o *obs.Observer, withFaults, skipAET bool) (*caseRun, error) {
	app, err := c.Scenario.App.make()
	if err != nil {
		return nil, err
	}
	base, err := c.Scenario.Base.Deployment(c.Scenario.App.Ranks)
	if err != nil {
		return nil, err
	}
	target, err := c.Target.Deployment(c.Scenario.App.Ranks)
	if err != nil {
		return nil, err
	}
	var inj *faults.Injector
	if withFaults {
		if inj, err = c.Injector(); err != nil {
			return nil, err
		}
	}
	out, err := predict.Run(predict.Experiment{
		App: app, Base: base, Target: target,
		EventOverhead: eventOverhead,
		SkipTargetAET: skipAET,
		Faults:        inj,
		Observer:      o,
	})
	if err != nil {
		return nil, err
	}
	return &caseRun{out: out, rep: inj.Report()}, nil
}

// evalCaseFn is the case evaluator; tests substitute it to exercise
// the runner's panic isolation and timeout paths.
var evalCaseFn = evalCase

// evalCase runs the case's pipeline and checks every configured
// assertion.
func evalCase(c Case, o *obs.Observer) CaseResult {
	res := newCaseResult(c)
	a := &c.Scenario.Assert

	// Ground truth on the target is only needed for the PETE bound;
	// every other assertion reads the prediction side.
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	run, err := c.execute(o, true, !a.HasPETEBound)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	out := run.out
	res.PETSeconds = out.PET.Seconds()
	res.SETSeconds = out.SET.Seconds()
	res.Phases = out.Total
	res.Relevant = out.Relevant
	res.Degraded = out.Degraded
	if a.HasPETEBound {
		res.AETSeconds = out.AETTarget.Seconds()
		pete := out.PETEPercent
		res.PETEPercent = &pete
	}

	check := func(name string, ok bool, got, want string, detail ...string) {
		ch := Check{Assertion: name, OK: ok, Got: got, Want: want}
		if len(detail) > 0 {
			ch.Detail = detail[0]
		}
		res.Checks = append(res.Checks, ch)
	}
	if a.HasPETEBound {
		check("pete_bound", out.PETEPercent <= a.PETEBound,
			fmt.Sprintf("PETE %.2f%%", out.PETEPercent),
			fmt.Sprintf("<= %g%%", a.PETEBound))
	}
	if a.HasPhasesMin {
		check("phases_min", out.Total >= a.PhasesMin,
			fmt.Sprintf("%d phases", out.Total),
			fmt.Sprintf(">= %d", a.PhasesMin))
	}
	if a.HasPhasesMax {
		check("phases_max", out.Total <= a.PhasesMax,
			fmt.Sprintf("%d phases", out.Total),
			fmt.Sprintf("<= %d", a.PhasesMax))
	}
	if a.HasRelevantMin {
		check("relevant_min", out.Relevant >= a.RelevantMin,
			fmt.Sprintf("%d relevant", out.Relevant),
			fmt.Sprintf(">= %d", a.RelevantMin))
	}
	if a.HasCoverageMin {
		cov := coverage(out.Table)
		check("coverage_min", cov >= a.CoverageMin,
			fmt.Sprintf("coverage %.3f", cov),
			fmt.Sprintf(">= %g", a.CoverageMin))
	}
	if a.RecoveryInvariant {
		checkRecovery(c, o, run, check)
	}
	if a.Determinism {
		checkDeterminism(c, o, run, a, check)
	}
	if a.MaxWall > 0 {
		check("max_wall", wall <= a.MaxWall,
			fmt.Sprintf("%.2fs", wall.Seconds()),
			fmt.Sprintf("<= %v", a.MaxWall))
	}
	if a.MaxAllocBytes > 0 {
		check("max_alloc", res.AllocBytes <= a.MaxAllocBytes,
			fmt.Sprintf("%d bytes", res.AllocBytes),
			fmt.Sprintf("<= %d bytes", a.MaxAllocBytes),
			"allocation is a process-wide delta; reliable at -workers 1")
	}

	res.Status = StatusPass
	if len(res.Failures()) > 0 {
		res.Status = StatusFail
	}
	return res
}

// coverage is the relevant phases' Eq. 1 mass as a fraction of the
// base AET: Σ(PhaseETᵢ·Wᵢ over relevant rows) / BaseAET.
func coverage(tb *phase.Table) float64 {
	if tb == nil || tb.BaseAET <= 0 {
		return 0
	}
	var mass float64
	for _, r := range tb.RelevantRows() {
		mass += r.PhaseET.Seconds() * float64(r.Weight)
	}
	return mass / tb.BaseAET.Seconds()
}

// checkRecovery verifies the chaos recovery property as a campaign
// assertion: when every injected fault recovered, the faulted
// pipeline's phase table must match a fault-free reference run's —
// identical row shape, and a matching PET. The PET comparison is
// bit-identical only for schedules with no physical perturbation
// (crash-only: restart costs land in SET, never in PET) and tables
// without an ETScale correction; message loss/dup/delay and compute
// jitter are live during the signature's own execution here (the
// whole pipeline runs under injection, unlike the root chaos property
// test which faults the traced run only), so they legitimately wobble
// the physically measured phase times and the PET must then stay
// within the envelope instead. If the schedule left unrecovered
// faults the invariant does not apply and the check passes vacuously,
// saying so.
func checkRecovery(c Case, o *obs.Observer, faulted *caseRun,
	check func(name string, ok bool, got, want string, detail ...string)) {
	const name = "recovery_invariant"
	if faulted.rep.Unrecovered > 0 {
		check(name, true, "not applicable", "full recovery",
			fmt.Sprintf("vacuous: %d unrecovered faults (schedule did not fully recover)", faulted.rep.Unrecovered))
		return
	}
	if faulted.rep.Injected == 0 && faulted.rep.ClockPerturbations == 0 {
		check(name, true, "not applicable", "full recovery",
			"vacuous: fault schedule injected nothing")
		return
	}
	ref, err := c.execute(o, false, true)
	if err != nil {
		check(name, false, "reference run failed", "full recovery matches fault-free", err.Error())
		return
	}
	if !sameShape(faulted.out.Table, ref.out.Table) {
		check(name, false,
			fmt.Sprintf("phase table %s", shapeString(faulted.out.Table)),
			fmt.Sprintf("fault-free shape %s", shapeString(ref.out.Table)))
		return
	}
	cfg, _ := faults.ParseConfig(c.Scenario.Faults.Spec)
	physical := cfg.LossRate > 0 || cfg.DupRate > 0 || cfg.DelayRate > 0 ||
		cfg.ComputeJitter > 0
	if !physical && scaledRows(faulted.out.Table)+scaledRows(ref.out.Table) == 0 {
		check(name, faulted.out.PET == ref.out.PET,
			fmt.Sprintf("PET %v", faulted.out.PET),
			fmt.Sprintf("== fault-free PET %v (crash-only schedule)", ref.out.PET))
		return
	}
	drift := 0.0
	if ref.out.PET != 0 {
		drift = abs(faulted.out.PET.Seconds()-ref.out.PET.Seconds()) / ref.out.PET.Seconds()
	}
	check(name, drift <= recoveryEnvelope,
		fmt.Sprintf("PET drift %.2f%%", 100*drift),
		fmt.Sprintf("<= %.0f%% of fault-free PET %v (physical perturbation active)",
			100*recoveryEnvelope, ref.out.PET))
}

// checkDeterminism re-runs the identical case (fresh injector, same
// seed) and requires the same prediction, signature time, phase
// counts, degradation and fault report.
func checkDeterminism(c Case, o *obs.Observer, first *caseRun, a *Assertions,
	check func(name string, ok bool, got, want string, detail ...string)) {
	const name = "determinism"
	second, err := c.execute(o, true, !a.HasPETEBound)
	if err != nil {
		check(name, false, "rerun failed", "identical rerun", err.Error())
		return
	}
	var diffs []string
	if first.out.PET != second.out.PET {
		diffs = append(diffs, fmt.Sprintf("PET %v vs %v", first.out.PET, second.out.PET))
	}
	if first.out.SET != second.out.SET {
		diffs = append(diffs, fmt.Sprintf("SET %v vs %v", first.out.SET, second.out.SET))
	}
	if first.out.Total != second.out.Total || first.out.Relevant != second.out.Relevant {
		diffs = append(diffs, fmt.Sprintf("phases %d/%d vs %d/%d",
			first.out.Total, first.out.Relevant, second.out.Total, second.out.Relevant))
	}
	if first.out.Degraded != second.out.Degraded ||
		!reflect.DeepEqual(first.out.LostPhases, second.out.LostPhases) {
		diffs = append(diffs, fmt.Sprintf("degradation %v%v vs %v%v",
			first.out.Degraded, first.out.LostPhases, second.out.Degraded, second.out.LostPhases))
	}
	if first.rep != second.rep {
		diffs = append(diffs, "fault reports differ")
	}
	if len(diffs) == 0 {
		check(name, true, "rerun identical", "identical rerun")
		return
	}
	check(name, false, fmt.Sprintf("rerun diverged: %v", diffs), "identical rerun")
}

// sameShape compares two phase tables' logical content: row count and
// per-row (PhaseID, Weight, Relevant).
func sameShape(a, b *phase.Table) bool {
	if a == nil || b == nil || len(a.Rows) != len(b.Rows) || a.TotalPhases != b.TotalPhases {
		return false
	}
	for i := range a.Rows {
		if a.Rows[i].PhaseID != b.Rows[i].PhaseID ||
			a.Rows[i].Weight != b.Rows[i].Weight ||
			a.Rows[i].Relevant != b.Rows[i].Relevant {
			return false
		}
	}
	return true
}

func shapeString(t *phase.Table) string {
	if t == nil {
		return "<nil>"
	}
	var rows []string
	for _, r := range t.Rows {
		rows = append(rows, fmt.Sprintf("%d:w%d", r.PhaseID, r.Weight))
	}
	return fmt.Sprintf("%v", rows)
}

// scaledRows counts rows carrying a pair-bias ETScale correction.
func scaledRows(t *phase.Table) int {
	n := 0
	for _, r := range t.Rows {
		if r.ETScale != 0 && r.ETScale != 1 {
			n++
		}
	}
	return n
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
