package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("hello durable world")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello durable world" {
		t.Errorf("content = %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp file left behind: %v", ents)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytesAtomic(OS{}, path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Errorf("content = %q", got)
	}
}

func TestWriteFileAtomicFailedWriteLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("mid-write failure")
	err := WriteFileAtomic(OS{}, path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage that must never land")
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "survivor" {
		t.Errorf("destination clobbered: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp.") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicCreateError(t *testing.T) {
	// The parent directory does not exist: Create must fail and the
	// error must name the destination.
	err := WriteBytesAtomic(OS{}, filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("expected error")
	}
}

// TestOSSeamOperations exercises every FS method of the real-OS
// implementation against a temp directory — the streaming spill store
// reads its CRC-checked cell files back through exactly this seam.
func TestOSSeamOperations(t *testing.T) {
	fs := OS{}
	root := t.TempDir()
	sub := filepath.Join(root, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	name := filepath.Join(sub, "cell.bin")
	f, err := fs.CreateExclusive(name)
	if err != nil {
		t.Fatalf("CreateExclusive: %v", err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateExclusive(name); err == nil {
		t.Fatal("CreateExclusive succeeded on an existing file")
	}
	got, err := fs.ReadFile(name)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	r, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	streamed, err := io.ReadAll(r)
	if err != nil || string(streamed) != "payload" {
		t.Fatalf("streamed read = %q, %v", streamed, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "cell.bin" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	st, err := fs.Stat(name)
	if err != nil || st.Size() != int64(len("payload")) {
		t.Fatalf("Stat = %v, %v", st, err)
	}
	if _, err := fs.Stat(filepath.Join(sub, "nope")); err == nil {
		t.Fatal("Stat of a missing file succeeded")
	}
}
