package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("hello durable world")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello durable world" {
		t.Errorf("content = %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp file left behind: %v", ents)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytesAtomic(OS{}, path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Errorf("content = %q", got)
	}
}

func TestWriteFileAtomicFailedWriteLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytesAtomic(OS{}, path, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("mid-write failure")
	err := WriteFileAtomic(OS{}, path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage that must never land")
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "survivor" {
		t.Errorf("destination clobbered: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp.") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileAtomicCreateError(t *testing.T) {
	// The parent directory does not exist: Create must fail and the
	// error must name the destination.
	err := WriteBytesAtomic(OS{}, filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("expected error")
	}
}
