// Package fsx is the write-side filesystem seam of the persistence
// layer. Every durable artefact the tool produces — tracefiles,
// persisted signatures, repository entries and manifests — goes to
// disk through an FS value, so tests (and the deterministic fault
// injector in internal/faults) can interpose torn writes, truncation
// and bit-rot below the codec layer without touching the codecs.
//
// The package also fixes the crash-consistency protocol in one place:
// WriteFileAtomic stages content in a temporary file in the target's
// directory, fsyncs it, renames it over the destination, and fsyncs
// the directory, so a crash at any point leaves either the old
// content, the new content, or an orphaned temp file — never a
// half-written destination.
package fsx

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
)

// File is the writable handle an FS hands out. Sync must flush the
// content to stable storage before Close makes it visible to renames.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the set of filesystem operations the persistence layer needs.
// Implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates a directory tree (os.MkdirAll semantics).
	MkdirAll(dir string, perm iofs.FileMode) error
	// Create opens a file for writing, truncating it if it exists.
	Create(name string) (File, error)
	// CreateExclusive creates a file that must not already exist
	// (O_CREATE|O_EXCL semantics); it is the primitive lock files are
	// built on.
	CreateExclusive(name string) (File, error)
	// ReadFile returns a file's full content.
	ReadFile(name string) ([]byte, error)
	// Open opens a file for streaming reads; large artefacts
	// (tracefiles) are verified block-by-block through this handle
	// instead of being slurped whole via ReadFile.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists a directory.
	ReadDir(dir string) ([]iofs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat describes a file.
	Stat(name string) (iofs.FileInfo, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(dir string, perm iofs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) CreateExclusive(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OS) ReadDir(dir string) ([]iofs.DirEntry, error) { return os.ReadDir(dir) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms (and some filesystems) refuse to fsync a
	// directory handle; that only loses the durability of the rename,
	// not its atomicity, so it is not worth failing the write over.
	if err := d.Sync(); err != nil && !errors.Is(err, iofs.ErrInvalid) {
		return err
	}
	return nil
}

// WriteFileAtomic writes a file through the crash-consistency
// protocol: the content produced by write is staged in a temporary
// file next to path, fsynced, renamed over path, and the directory is
// fsynced. On any error the temp file is removed and the destination
// is untouched.
func WriteFileAtomic(fs FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, ".tmp."+filepath.Base(path))
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("fsx: staging %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("fsx: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("fsx: closing %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("fsx: publishing %s: %w", path, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("fsx: syncing dir of %s: %w", path, err)
	}
	return nil
}

// WriteBytesAtomic is WriteFileAtomic for in-memory content.
func WriteBytesAtomic(fs FS, path string, data []byte) error {
	return WriteFileAtomic(fs, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
