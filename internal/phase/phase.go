// Package phase implements PAS2P's pattern identification (§3.3 of the
// paper): it walks the logical trace tick by tick, cutting it into
// phases — maximal windows that end where communication behaviour
// starts repeating — and folds recurring windows into a single phase
// with a weight (its occurrence count) using the paper's similarity
// relation (same tick span; per-event: same communication type,
// similar volume, computational time within 85 percent; a phase is
// similar when at least 80 percent of its events are). Phases whose
// weight times execution time reaches 1 percent of the application
// execution time are relevant and become the signature's content.
package phase

import (
	"fmt"
	"sort"
	"sync"

	"pas2p/internal/logical"
	"pas2p/internal/obs"
	"pas2p/internal/vtime"
)

// Config holds the similarity and relevance knobs; the paper's values
// are the defaults and the ablation benches sweep them.
type Config struct {
	// EventSimilarity is the fraction of events that must be similar
	// for two windows to be the same phase (paper: 0.80).
	EventSimilarity float64
	// ComputeSimilarity is the minimum ratio between two events'
	// computational times for them to compare similar (paper: 0.85).
	ComputeSimilarity float64
	// VolumeSimilarity is the minimum ratio between two events'
	// communication volumes (the paper folds this into "similar
	// communication"; we default it to the same 0.85).
	VolumeSimilarity float64
	// RelevanceFraction is the share of the application execution time
	// a phase must account for to be relevant (paper: 0.01).
	RelevanceFraction float64
	// ExtractParallel scores same-length phase candidates on a worker
	// pool instead of sequentially. The result is bit-identical to the
	// sequential path: candidates are still resolved in phase-ID order.
	ExtractParallel bool
	// Workers bounds the ExtractParallel pool; 0 means GOMAXPROCS.
	Workers int
	// naiveMatch disables the fingerprint index and scans every phase
	// with the full cell-by-cell test — the pre-index reference path,
	// kept for the golden equivalence tests and benchmarks.
	naiveMatch bool
	// Observer, when non-nil, records a "phase.extract" span with tick,
	// scoring and pruning counters. A pointer keeps Config comparable
	// (predict relies on == against the zero value) and nil keeps the
	// extraction path allocation-free.
	Observer *obs.Observer `json:"-"`
}

// DefaultConfig returns the paper's parameter values.
func DefaultConfig() Config {
	return Config{
		EventSimilarity:   0.80,
		ComputeSimilarity: 0.85,
		VolumeSimilarity:  0.85,
		RelevanceFraction: 0.01,
	}
}

func (c Config) validate() error {
	// NaN fails every ordered comparison, so each threshold check must
	// accept only proven-good values rather than reject proven-bad ones.
	for _, v := range []float64{c.EventSimilarity, c.ComputeSimilarity, c.VolumeSimilarity} {
		if !(v > 0 && v <= 1) {
			return fmt.Errorf("phase: similarity thresholds must be in (0,1], got %v", v)
		}
	}
	if !(c.RelevanceFraction >= 0 && c.RelevanceFraction < 1) {
		return fmt.Errorf("phase: relevance fraction %v out of range", c.RelevanceFraction)
	}
	if c.Workers < 0 {
		return fmt.Errorf("phase: negative worker count %d", c.Workers)
	}
	return nil
}

// Cell is one (tick offset, process) slot of a phase's behaviour
// matrix. An absent cell is the paper's communication "type 0".
type Cell struct {
	Present bool
	Sig     uint64
	Size    int64
	Compute vtime.Duration
}

// Occurrence is one concrete appearance of a phase in the trace.
type Occurrence struct {
	// StartTick (inclusive) and EndTick (exclusive) delimit the window.
	StartTick, EndTick int
	// Dur is the physical duration the occurrence accounted for on the
	// base machine (the occurrence cuts tile the whole run).
	Dur vtime.Duration
}

// Phase is one recurring behaviour pattern.
type Phase struct {
	// ID numbers phases in discovery order, starting at 1 as in the
	// paper's phase tables.
	ID int
	// TickLen is the window length in ticks.
	TickLen int
	// Cells is the representative behaviour matrix of the first
	// occurrence, indexed [tick offset][process].
	Cells [][]Cell
	// Events is the number of present cells (the event count used by
	// the similarity percentage).
	Events int
	// Occurrences lists every appearance, in trace order. Weight (the
	// paper's term) is len(Occurrences).
	Occurrences []Occurrence
}

// Weight is the number of times the phase occurs.
func (p *Phase) Weight() int { return len(p.Occurrences) }

// TotalDur is the physical time the phase accounts for on the base
// machine, summed over occurrences.
func (p *Phase) TotalDur() vtime.Duration {
	var d vtime.Duration
	for _, o := range p.Occurrences {
		d += o.Dur
	}
	return d
}

// MeanET is the phase execution time: the mean occurrence duration.
func (p *Phase) MeanET() vtime.Duration {
	if len(p.Occurrences) == 0 {
		return 0
	}
	return p.TotalDur() / vtime.Duration(len(p.Occurrences))
}

// Analysis is the result of phase extraction over one logical trace.
type Analysis struct {
	Logical *logical.Logical
	Config  Config
	Phases  []*Phase
	// AET is the base-machine application execution time the relevance
	// rule is measured against.
	AET vtime.Duration
}

// Relevant returns the phases whose weight times execution time is at
// least the configured fraction of the application execution time.
func (a *Analysis) Relevant() []*Phase {
	var out []*Phase
	threshold := float64(a.AET) * a.Config.RelevanceFraction
	for _, p := range a.Phases {
		if float64(p.TotalDur()) >= threshold {
			out = append(out, p)
		}
	}
	return out
}

// Extract runs the §3.3 algorithm over a logical trace.
func Extract(l *logical.Logical, cfg Config) (*Analysis, error) {
	return ExtractWithLog(l, cfg, nil)
}

// ExtractWithLog runs the extraction while narrating each step of the
// paper's Fig. 6 algorithm (startpoints, repeat detections, 4a/4b
// decisions, folds) through logf. A nil logf disables narration.
func ExtractWithLog(l *logical.Logical, cfg Config, logf func(format string, args ...any)) (*Analysis, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if l == nil || l.NumTicks() == 0 {
		return nil, fmt.Errorf("phase: empty logical trace")
	}
	sp := cfg.Observer.StartSpan("phase.extract")
	x := &extractor{
		l:    l,
		cfg:  cfg,
		an:   &Analysis{Logical: l, Config: cfg, AET: l.Trace.AET},
		logf: logf,
	}
	if cfg.naiveMatch {
		x.cuts = buildCuts(l)
	} else {
		// The indexed scan computes the cuts during its fill pass.
		x.m = newMatcher(cfg)
	}
	x.run()
	sp.SetCounter("ticks", int64(l.NumTicks()))
	sp.SetCounter("events", int64(len(l.Trace.Events)))
	sp.SetCounter("phases_found", int64(len(x.an.Phases)))
	if x.m != nil {
		sp.SetCounter("windows_scored", x.m.nScored)
		sp.SetCounter("windows_pruned", x.m.nPruned)
		sp.SetCounter("window_cache_hits", x.m.nCacheHits)
	}
	sp.End()
	return x.an, nil
}

// buildCuts returns cut[t] = the physical completion time of everything
// at ticks < t (a running max of event exits). Occurrence durations are
// cut deltas, so phase durations tile the run exactly.
func buildCuts(l *logical.Logical) []vtime.Time {
	cuts := make([]vtime.Time, l.NumTicks()+1)
	var hw vtime.Time
	for t := 0; t < l.NumTicks(); t++ {
		cuts[t] = hw
		for _, s := range l.Ticks[t] {
			if e := l.Trace.Events[s.Event].Exit; e > hw {
				hw = e
			}
		}
	}
	cuts[l.NumTicks()] = hw
	return cuts
}

type extractor struct {
	l    *logical.Logical
	cfg  Config
	an   *Analysis
	cuts []vtime.Time
	// m is the fingerprint-indexed matcher; nil selects the reference
	// full-scan path (cfg.naiveMatch).
	m    *matcher
	logf func(format string, args ...any)
}

func (x *extractor) log(format string, args ...any) {
	if x.logf != nil {
		x.logf(format, args...)
	}
}

// run scans the tick axis: grow a window from the current startpoint
// until some process repeats a communication type it already showed in
// the window; then close one or two phases exactly as the paper's
// steps 4a/4b prescribe and restart from the repeat boundary. The
// indexed engine uses its own scan with flat, epoch-cleared state; the
// reference path below is the frozen pre-index implementation the
// golden tests compare against.
func (x *extractor) run() {
	if x.m != nil {
		x.runIndexed()
		return
	}
	nTicks := x.l.NumTicks()
	start := 0
	// firstSeen[p] maps a process's comm signature to the tick of its
	// first occurrence within the current window.
	firstSeen := make([]map[uint64]int, x.l.Trace.Procs)
	reset := func() {
		for p := range firstSeen {
			firstSeen[p] = nil
		}
	}
	reset()
	for t := 0; t < nTicks; t++ {
		// Find the repeated event at this tick with the earliest first
		// occurrence, if any (deterministic: ticks are process-sorted).
		repeatFirst := -1
		x.l.EachSig(t, func(proc int32, sig uint64) {
			m := firstSeen[proc]
			if m == nil {
				m = make(map[uint64]int)
				firstSeen[proc] = m
			}
			if ft, ok := m[sig]; ok {
				if repeatFirst < 0 || ft < repeatFirst {
					repeatFirst = ft
				}
				return
			}
			m[sig] = t
		})
		if repeatFirst < 0 {
			continue // step 3: keep growing
		}
		if repeatFirst == start {
			// Step 4a: one full period [start, t).
			x.log("tick %d: repeat of the startpoint event -> step 4a, close phase [%d,%d)", t, start, t)
			x.savePhase(start, t)
		} else {
			// Step 4b: partition into phase a and phase b.
			x.log("tick %d: repeat of tick-%d event -> step 4b, partition into [%d,%d) and [%d,%d)",
				t, repeatFirst, start, repeatFirst, repeatFirst, t)
			x.savePhase(start, repeatFirst)
			x.savePhase(repeatFirst, t)
		}
		// Step 6: new startpoint where the last phase ended; the
		// repeated event at t opens the new window.
		x.log("tick %d: new startpoint (step 6)", t)
		start = t
		reset()
		x.l.EachSig(t, func(proc int32, sig uint64) {
			m := firstSeen[proc]
			if m == nil {
				m = make(map[uint64]int)
				firstSeen[proc] = m
			}
			m[sig] = t
		})
	}
	if start < nTicks {
		x.savePhase(start, nTicks)
	}
}

// scanBuf holds the big scratch arrays of one indexed extraction —
// the behaviour matrix, its row headers, the per-event signatures and
// the event prefix sums. Nothing retains them past runIndexed (phases
// copy their cells out, the matcher dies with the extractor), so they
// recycle through a pool instead of churning tens of megabytes of
// garbage per extraction.
type scanBuf struct {
	flat []Cell
	rows [][]Cell
	sigs []uint64
	evAt []int
}

var scanPool sync.Pool

// cells returns the flat matrix at size n, zeroed: absent cells must
// read as Cell{} for the equality cache and the similarity tests.
func (b *scanBuf) cells(n int) []Cell {
	if cap(b.flat) < n {
		b.flat = make([]Cell, n)
	} else {
		b.flat = b.flat[:n]
		clear(b.flat)
	}
	return b.flat
}

// rowSlice returns the row-header slice; every entry is rewritten.
func (b *scanBuf) rowSlice(n int) [][]Cell {
	if cap(b.rows) < n {
		b.rows = make([][]Cell, n)
	}
	b.rows = b.rows[:n]
	return b.rows
}

// sigSlice returns the per-event signature slice; fully rewritten.
func (b *scanBuf) sigSlice(n int) []uint64 {
	if cap(b.sigs) < n {
		b.sigs = make([]uint64, n)
	}
	b.sigs = b.sigs[:n]
	return b.sigs
}

// prefix returns the prefix-sum slice; entry 0 is the only one read
// before being written.
func (b *scanBuf) prefix(n int) []int {
	if cap(b.evAt) < n {
		b.evAt = make([]int, n)
	}
	b.evAt = b.evAt[:n]
	b.evAt[0] = 0
	return b.evAt
}

// runIndexed is the scan behind the fingerprint-indexed engine. It
// makes the identical 4a/4b decisions as the reference scan — the
// first-occurrence table reproduces the firstSeen map semantics
// exactly — but materialises the whole behaviour matrix up front in
// one flat allocation (fanned out over the worker pool when
// Config.ExtractParallel is set), so windows are zero-copy slices of
// the tick axis, window event counts come from a prefix sum, and the
// repeat scan walks contiguous memory with an epoch-cleared
// open-addressed table instead of per-window maps.
func (x *extractor) runIndexed() {
	nTicks := x.l.NumTicks()
	procs := x.l.Trace.Procs
	events := x.l.Trace.Events
	buf, _ := scanPool.Get().(*scanBuf)
	if buf == nil {
		buf = &scanBuf{}
	}
	defer scanPool.Put(buf)
	flat := buf.cells(nTicks * procs)
	rows := buf.rowSlice(nTicks)
	evAt := buf.prefix(nTicks + 1) // prefix sums of present cells
	for t := 0; t < nTicks; t++ {
		rows[t] = flat[t*procs : (t+1)*procs : (t+1)*procs]
		evAt[t+1] = evAt[t] + len(x.l.Ticks[t])
	}
	// Fill walks the events in storage order — sequential reads, since
	// logical ordering rewrote every LT to its final tick index — and
	// scatters cells into the matrix. Each event owns its (tick, proc)
	// slot exclusively, so chunks of the event axis never conflict and
	// the pass fans out over the worker pool; only the per-tick
	// exit high-water marks need per-worker accumulators.
	x.cuts = make([]vtime.Time, nTicks+1) // running max of exits, finished below
	sigs := buf.sigSlice(len(events))     // per-event signature, for the repeat scan
	fill := func(lo, hi int, cuts []vtime.Time) {
		for i := lo; i < hi; i++ {
			ev := &events[i]
			t := int(ev.LT)
			sig := ev.CommSignature()
			sigs[i] = sig
			flat[t*procs+int(ev.Process)] = Cell{Present: true, Sig: sig, Size: ev.Size, Compute: ev.ComputeBefore}
			if ev.Exit > cuts[t+1] {
				cuts[t+1] = ev.Exit
			}
		}
	}
	if x.cfg.ExtractParallel && x.m.workers > 1 && len(events) >= 4096 {
		workers := x.m.workers
		part := make([][]vtime.Time, workers)
		var wg sync.WaitGroup
		chunk := (len(events) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(events) {
				break
			}
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			part[w] = make([]vtime.Time, nTicks+1)
			wg.Add(1)
			go func(lo, hi int, cuts []vtime.Time) {
				defer wg.Done()
				fill(lo, hi, cuts)
			}(lo, hi, part[w])
		}
		wg.Wait()
		for _, cuts := range part {
			for t, v := range cuts {
				if v > x.cuts[t] {
					x.cuts[t] = v
				}
			}
		}
	} else {
		fill(0, len(events), x.cuts)
	}
	for t := 0; t < nTicks; t++ {
		// Same running max as buildCuts: cut[t] covers everything at
		// ticks < t.
		if x.cuts[t+1] < x.cuts[t] {
			x.cuts[t+1] = x.cuts[t]
		}
	}
	var ft firstTable
	ft.init(512)
	start := 0
	for t := 0; t < nTicks; t++ {
		// Find the repeated event at this tick with the earliest first
		// occurrence, if any. The minimum over the tick makes the
		// outcome independent of iteration order. Signatures come from
		// the per-event array — the tick's slots walk it as one
		// sequential stream per process — rather than the much larger
		// behaviour matrix.
		repeatFirst := -1
		for _, sl := range x.l.Ticks[t] {
			if f := ft.insertOrGet(sigs[sl.Event], sl.Proc, t); f >= 0 && (repeatFirst < 0 || f < repeatFirst) {
				repeatFirst = f
			}
		}
		if repeatFirst < 0 {
			continue // step 3: keep growing
		}
		if repeatFirst == start {
			// Step 4a: one full period [start, t).
			if x.logf != nil { // guard: ...any args heap-box on every call
				x.log("tick %d: repeat of the startpoint event -> step 4a, close phase [%d,%d)", t, start, t)
			}
			x.savePhaseCells(start, t, rows[start:t:t], evAt[t]-evAt[start])
		} else {
			// Step 4b: partition into phase a and phase b.
			if x.logf != nil {
				x.log("tick %d: repeat of tick-%d event -> step 4b, partition into [%d,%d) and [%d,%d)",
					t, repeatFirst, start, repeatFirst, repeatFirst, t)
			}
			x.savePhaseCells(start, repeatFirst, rows[start:repeatFirst:repeatFirst], evAt[repeatFirst]-evAt[start])
			x.savePhaseCells(repeatFirst, t, rows[repeatFirst:t:t], evAt[t]-evAt[repeatFirst])
		}
		// Step 6: new startpoint where the last phase ended; the
		// repeated event at t opens the new window.
		if x.logf != nil {
			x.log("tick %d: new startpoint (step 6)", t)
		}
		start = t
		ft.reset()
		for _, sl := range x.l.Ticks[t] {
			ft.insertOrGet(sigs[sl.Event], sl.Proc, t)
		}
	}
	if start < nTicks {
		x.savePhaseCells(start, nTicks, rows[start:nTicks:nTicks], evAt[nTicks]-evAt[start])
	}
}

// savePhaseCells folds a pre-materialised window [s,e) through the
// matching engine: the window-equality cache first, then the
// fingerprint index. A window that becomes a new phase gets its cells
// copied out, so the Analysis never pins the extraction's flat matrix.
func (x *extractor) savePhaseCells(s, e int, cells [][]Cell, events int) {
	if e <= s {
		return
	}
	occ := Occurrence{StartTick: s, EndTick: e, Dur: x.cuts[e].Sub(x.cuts[s])}
	if match := x.m.cacheHit(cells, events); match != nil {
		match.Occurrences = append(match.Occurrences, occ)
		if x.logf != nil { // guard: ...any args heap-box on every call
			x.log("  window [%d,%d) similar to phase %d -> weight %d (step 5)", s, e, match.ID, match.Weight())
		}
		return
	}
	match := x.m.match(cells, events)
	if match == nil {
		owned := copyCells(cells)
		np := x.newPhase(owned, events, occ)
		x.m.addCurrent(np, owned)
		x.m.setCache(owned, events, np)
		return
	}
	x.m.setCache(cells, events, match)
	match.Occurrences = append(match.Occurrences, occ)
	if x.logf != nil {
		x.log("  window [%d,%d) similar to phase %d -> weight %d (step 5)", s, e, match.ID, match.Weight())
	}
}

// copyCells clones a window's behaviour matrix into its own storage.
func copyCells(cells [][]Cell) [][]Cell {
	procs := 0
	if len(cells) > 0 {
		procs = len(cells[0])
	}
	flat := make([]Cell, len(cells)*procs)
	out := make([][]Cell, len(cells))
	for t, row := range cells {
		dst := flat[t*procs : (t+1)*procs : (t+1)*procs]
		copy(dst, row)
		out[t] = dst
	}
	return out
}

// savePhase folds the window [s,e) into an existing similar phase or
// records a new one (reference path).
func (x *extractor) savePhase(s, e int) {
	if e <= s {
		return
	}
	occ := Occurrence{StartTick: s, EndTick: e, Dur: x.cuts[e].Sub(x.cuts[s])}
	cells, events := x.window(s, e)
	var match *Phase
	for _, p := range x.an.Phases {
		if similarSeed(p, cells, events, x.cfg) {
			match = p
			break
		}
	}
	if match == nil {
		x.newPhase(cells, events, occ)
		return
	}
	match.Occurrences = append(match.Occurrences, occ)
	x.log("  window [%d,%d) similar to phase %d -> weight %d (step 5)", s, e, match.ID, match.Weight())
}

// newPhase records a freshly discovered phase.
func (x *extractor) newPhase(cells [][]Cell, events int, occ Occurrence) *Phase {
	p := &Phase{
		ID:          len(x.an.Phases) + 1,
		TickLen:     len(cells),
		Cells:       cells,
		Events:      events,
		Occurrences: []Occurrence{occ},
	}
	x.an.Phases = append(x.an.Phases, p)
	x.log("  window [%d,%d) is new -> phase %d (%d events)", occ.StartTick, occ.EndTick, p.ID, events)
	return p
}

// window materialises the behaviour matrix of ticks [s,e).
func (x *extractor) window(s, e int) ([][]Cell, int) {
	procs := x.l.Trace.Procs
	cells := make([][]Cell, e-s)
	events := 0
	for t := s; t < e; t++ {
		row := make([]Cell, procs)
		for _, sl := range x.l.Ticks[t] {
			ev := &x.l.Trace.Events[sl.Event]
			row[sl.Proc] = Cell{
				Present: true,
				Sig:     ev.CommSignature(),
				Size:    ev.Size,
				Compute: ev.ComputeBefore,
			}
			events++
		}
		cells[t-s] = row
	}
	return cells, events
}

// similarSeed implements the paper's step 5 criteria with a full
// cell-by-cell scan and no shortcuts — the reference the indexed
// matcher must agree with bit for bit.
func similarSeed(p *Phase, cells [][]Cell, events int, cfg Config) bool {
	if p.TickLen != len(cells) {
		return false // 5a: tick spans must match
	}
	total := p.Events
	if events > total {
		total = events
	}
	if total == 0 {
		return true
	}
	similarCount := 0
	for t := range cells {
		for pr := range cells[t] {
			a, b := p.Cells[t][pr], cells[t][pr]
			switch {
			case !a.Present && !b.Present:
				// No event on either side: not counted.
			case !a.Present || !b.Present:
				// 5b: "type 0" compares similar to anything.
				similarCount++
			default:
				if a.Sig == b.Sig &&
					ratioAtLeast(float64(a.Size), float64(b.Size), cfg.VolumeSimilarity) &&
					ratioAtLeast(float64(a.Compute), float64(b.Compute), cfg.ComputeSimilarity) {
					similarCount++
				}
			}
		}
	}
	return float64(similarCount) >= cfg.EventSimilarity*float64(total)
}

// similarCells is similarSeed's early-exit form: it returns as soon as
// the accumulated count already meets the threshold, or as soon as the
// cells still unexamined cannot lift it there. Both exits fire only
// once the outcome is decided, using the very comparison the full scan
// ends with, so the answer is always identical to similarSeed's.
func similarCells(a, b [][]Cell, aEvents, bEvents int, cfg Config) bool {
	total := aEvents
	if bEvents > total {
		total = bEvents
	}
	if total == 0 {
		return true
	}
	need := cfg.EventSimilarity * float64(total)
	procs := 0
	if len(b) > 0 {
		procs = len(b[0])
	}
	remaining := len(b) * procs
	similarCount := 0
	for t := range b {
		rowA, rowB := a[t], b[t]
		for pr := range rowB {
			ca, cb := rowA[pr], rowB[pr]
			switch {
			case !ca.Present && !cb.Present:
			case !ca.Present || !cb.Present:
				similarCount++
			default:
				if ca.Sig == cb.Sig &&
					ratioAtLeast(float64(ca.Size), float64(cb.Size), cfg.VolumeSimilarity) &&
					ratioAtLeast(float64(ca.Compute), float64(cb.Compute), cfg.ComputeSimilarity) {
					similarCount++
				}
			}
		}
		remaining -= procs
		if float64(similarCount) >= need {
			return true
		}
		if float64(similarCount+remaining) < need {
			return false
		}
	}
	return float64(similarCount) >= need
}

// ratioAtLeast reports whether min(a,b)/max(a,b) >= threshold. Only
// the exact pair (0,0) is trivially similar; negative or NaN inputs
// (corrupt volumes or compute times) always compare dissimilar rather
// than silently matching everything.
func ratioAtLeast(a, b, threshold float64) bool {
	if a < 0 || b < 0 {
		return false
	}
	if a == b {
		return true // includes (0,0)
	}
	if a > b {
		a, b = b, a
	}
	// Here b > a >= 0, so b > 0; NaN falls through every comparison
	// above and fails this one too.
	return a/b >= threshold
}

// Validate checks the tiling invariants: occurrences cover every tick
// exactly once and durations sum to the run length.
func (a *Analysis) Validate() error {
	n := a.Logical.NumTicks()
	covered := make([]int, n)
	var total vtime.Duration
	for _, p := range a.Phases {
		if p.Weight() < 1 {
			return fmt.Errorf("phase %d has no occurrences", p.ID)
		}
		for _, o := range p.Occurrences {
			if o.StartTick < 0 || o.EndTick > n || o.StartTick >= o.EndTick {
				return fmt.Errorf("phase %d occurrence [%d,%d) out of range", p.ID, o.StartTick, o.EndTick)
			}
			for t := o.StartTick; t < o.EndTick; t++ {
				covered[t]++
			}
			total += o.Dur
		}
	}
	for t, cnt := range covered {
		if cnt != 1 {
			return fmt.Errorf("tick %d covered %d times", t, cnt)
		}
	}
	if total > a.AET+vtime.Duration(n) || total < a.AET-a.AET/100-vtime.Duration(n) {
		return fmt.Errorf("phase durations sum to %v, application ran %v", total, a.AET)
	}
	return nil
}

// Summary renders the analysis like the paper's Table 3 header block.
func (a *Analysis) Summary() string {
	rel := a.Relevant()
	return fmt.Sprintf("Total of phases: %d, Relevant phases: %d", len(a.Phases), len(rel))
}

// SortedByTotalDur returns phases ordered by their share of the run,
// largest first (tie-broken by ID for determinism).
func (a *Analysis) SortedByTotalDur() []*Phase {
	out := append([]*Phase(nil), a.Phases...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].TotalDur(), out[j].TotalDur()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
