// Package phase implements PAS2P's pattern identification (§3.3 of the
// paper): it walks the logical trace tick by tick, cutting it into
// phases — maximal windows that end where communication behaviour
// starts repeating — and folds recurring windows into a single phase
// with a weight (its occurrence count) using the paper's similarity
// relation (same tick span; per-event: same communication type,
// similar volume, computational time within 85 percent; a phase is
// similar when at least 80 percent of its events are). Phases whose
// weight times execution time reaches 1 percent of the application
// execution time are relevant and become the signature's content.
package phase

import (
	"fmt"
	"sort"

	"pas2p/internal/logical"
	"pas2p/internal/vtime"
)

// Config holds the similarity and relevance knobs; the paper's values
// are the defaults and the ablation benches sweep them.
type Config struct {
	// EventSimilarity is the fraction of events that must be similar
	// for two windows to be the same phase (paper: 0.80).
	EventSimilarity float64
	// ComputeSimilarity is the minimum ratio between two events'
	// computational times for them to compare similar (paper: 0.85).
	ComputeSimilarity float64
	// VolumeSimilarity is the minimum ratio between two events'
	// communication volumes (the paper folds this into "similar
	// communication"; we default it to the same 0.85).
	VolumeSimilarity float64
	// RelevanceFraction is the share of the application execution time
	// a phase must account for to be relevant (paper: 0.01).
	RelevanceFraction float64
}

// DefaultConfig returns the paper's parameter values.
func DefaultConfig() Config {
	return Config{
		EventSimilarity:   0.80,
		ComputeSimilarity: 0.85,
		VolumeSimilarity:  0.85,
		RelevanceFraction: 0.01,
	}
}

func (c Config) validate() error {
	for _, v := range []float64{c.EventSimilarity, c.ComputeSimilarity, c.VolumeSimilarity} {
		if v <= 0 || v > 1 {
			return fmt.Errorf("phase: similarity thresholds must be in (0,1], got %v", v)
		}
	}
	if c.RelevanceFraction < 0 || c.RelevanceFraction >= 1 {
		return fmt.Errorf("phase: relevance fraction %v out of range", c.RelevanceFraction)
	}
	return nil
}

// Cell is one (tick offset, process) slot of a phase's behaviour
// matrix. An absent cell is the paper's communication "type 0".
type Cell struct {
	Present bool
	Sig     uint64
	Size    int64
	Compute vtime.Duration
}

// Occurrence is one concrete appearance of a phase in the trace.
type Occurrence struct {
	// StartTick (inclusive) and EndTick (exclusive) delimit the window.
	StartTick, EndTick int
	// Dur is the physical duration the occurrence accounted for on the
	// base machine (the occurrence cuts tile the whole run).
	Dur vtime.Duration
}

// Phase is one recurring behaviour pattern.
type Phase struct {
	// ID numbers phases in discovery order, starting at 1 as in the
	// paper's phase tables.
	ID int
	// TickLen is the window length in ticks.
	TickLen int
	// Cells is the representative behaviour matrix of the first
	// occurrence, indexed [tick offset][process].
	Cells [][]Cell
	// Events is the number of present cells (the event count used by
	// the similarity percentage).
	Events int
	// Occurrences lists every appearance, in trace order. Weight (the
	// paper's term) is len(Occurrences).
	Occurrences []Occurrence
}

// Weight is the number of times the phase occurs.
func (p *Phase) Weight() int { return len(p.Occurrences) }

// TotalDur is the physical time the phase accounts for on the base
// machine, summed over occurrences.
func (p *Phase) TotalDur() vtime.Duration {
	var d vtime.Duration
	for _, o := range p.Occurrences {
		d += o.Dur
	}
	return d
}

// MeanET is the phase execution time: the mean occurrence duration.
func (p *Phase) MeanET() vtime.Duration {
	if len(p.Occurrences) == 0 {
		return 0
	}
	return p.TotalDur() / vtime.Duration(len(p.Occurrences))
}

// Analysis is the result of phase extraction over one logical trace.
type Analysis struct {
	Logical *logical.Logical
	Config  Config
	Phases  []*Phase
	// AET is the base-machine application execution time the relevance
	// rule is measured against.
	AET vtime.Duration
}

// Relevant returns the phases whose weight times execution time is at
// least the configured fraction of the application execution time.
func (a *Analysis) Relevant() []*Phase {
	var out []*Phase
	threshold := float64(a.AET) * a.Config.RelevanceFraction
	for _, p := range a.Phases {
		if float64(p.TotalDur()) >= threshold {
			out = append(out, p)
		}
	}
	return out
}

// Extract runs the §3.3 algorithm over a logical trace.
func Extract(l *logical.Logical, cfg Config) (*Analysis, error) {
	return ExtractWithLog(l, cfg, nil)
}

// ExtractWithLog runs the extraction while narrating each step of the
// paper's Fig. 6 algorithm (startpoints, repeat detections, 4a/4b
// decisions, folds) through logf. A nil logf disables narration.
func ExtractWithLog(l *logical.Logical, cfg Config, logf func(format string, args ...any)) (*Analysis, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if l == nil || l.NumTicks() == 0 {
		return nil, fmt.Errorf("phase: empty logical trace")
	}
	x := &extractor{
		l:    l,
		cfg:  cfg,
		an:   &Analysis{Logical: l, Config: cfg, AET: l.Trace.AET},
		cuts: buildCuts(l),
		logf: logf,
	}
	x.run()
	return x.an, nil
}

// buildCuts returns cut[t] = the physical completion time of everything
// at ticks < t (a running max of event exits). Occurrence durations are
// cut deltas, so phase durations tile the run exactly.
func buildCuts(l *logical.Logical) []vtime.Time {
	cuts := make([]vtime.Time, l.NumTicks()+1)
	var hw vtime.Time
	for t := 0; t < l.NumTicks(); t++ {
		cuts[t] = hw
		for _, s := range l.Ticks[t] {
			if e := l.Trace.Events[s.Event].Exit; e > hw {
				hw = e
			}
		}
	}
	cuts[l.NumTicks()] = hw
	return cuts
}

type extractor struct {
	l    *logical.Logical
	cfg  Config
	an   *Analysis
	cuts []vtime.Time
	logf func(format string, args ...any)
}

func (x *extractor) log(format string, args ...any) {
	if x.logf != nil {
		x.logf(format, args...)
	}
}

// run scans the tick axis: grow a window from the current startpoint
// until some process repeats a communication type it already showed in
// the window; then close one or two phases exactly as the paper's
// steps 4a/4b prescribe and restart from the repeat boundary.
func (x *extractor) run() {
	nTicks := x.l.NumTicks()
	start := 0
	// firstSeen[p] maps a process's comm signature to the tick of its
	// first occurrence within the current window.
	firstSeen := make([]map[uint64]int, x.l.Trace.Procs)
	reset := func() {
		for p := range firstSeen {
			firstSeen[p] = nil
		}
	}
	reset()
	for t := 0; t < nTicks; t++ {
		// Find the repeated event at this tick with the earliest first
		// occurrence, if any (deterministic: ticks are process-sorted).
		repeatFirst := -1
		for _, s := range x.l.Ticks[t] {
			e := &x.l.Trace.Events[s.Event]
			sig := e.CommSignature()
			m := firstSeen[s.Proc]
			if m == nil {
				m = make(map[uint64]int)
				firstSeen[s.Proc] = m
			}
			if ft, ok := m[sig]; ok {
				if repeatFirst < 0 || ft < repeatFirst {
					repeatFirst = ft
				}
				continue
			}
			m[sig] = t
		}
		if repeatFirst < 0 {
			continue // step 3: keep growing
		}
		if repeatFirst == start {
			// Step 4a: one full period [start, t).
			x.log("tick %d: repeat of the startpoint event -> step 4a, close phase [%d,%d)", t, start, t)
			x.savePhase(start, t)
		} else {
			// Step 4b: partition into phase a and phase b.
			x.log("tick %d: repeat of tick-%d event -> step 4b, partition into [%d,%d) and [%d,%d)",
				t, repeatFirst, start, repeatFirst, repeatFirst, t)
			x.savePhase(start, repeatFirst)
			x.savePhase(repeatFirst, t)
		}
		// Step 6: new startpoint where the last phase ended; the
		// repeated event at t opens the new window.
		x.log("tick %d: new startpoint (step 6)", t)
		start = t
		reset()
		for _, s := range x.l.Ticks[t] {
			e := &x.l.Trace.Events[s.Event]
			m := firstSeen[s.Proc]
			if m == nil {
				m = make(map[uint64]int)
				firstSeen[s.Proc] = m
			}
			m[e.CommSignature()] = t
		}
	}
	if start < nTicks {
		x.savePhase(start, nTicks)
	}
}

// savePhase folds the window [s,e) into an existing similar phase or
// records a new one.
func (x *extractor) savePhase(s, e int) {
	if e <= s {
		return
	}
	occ := Occurrence{StartTick: s, EndTick: e, Dur: x.cuts[e].Sub(x.cuts[s])}
	cells, events := x.window(s, e)
	for _, p := range x.an.Phases {
		if x.similar(p, cells, events) {
			p.Occurrences = append(p.Occurrences, occ)
			x.log("  window [%d,%d) similar to phase %d -> weight %d (step 5)", s, e, p.ID, p.Weight())
			return
		}
	}
	x.an.Phases = append(x.an.Phases, &Phase{
		ID:          len(x.an.Phases) + 1,
		TickLen:     e - s,
		Cells:       cells,
		Events:      events,
		Occurrences: []Occurrence{occ},
	})
	x.log("  window [%d,%d) is new -> phase %d (%d events)", s, e, len(x.an.Phases), events)
}

// window materialises the behaviour matrix of ticks [s,e).
func (x *extractor) window(s, e int) ([][]Cell, int) {
	procs := x.l.Trace.Procs
	cells := make([][]Cell, e-s)
	events := 0
	for t := s; t < e; t++ {
		row := make([]Cell, procs)
		for _, sl := range x.l.Ticks[t] {
			ev := &x.l.Trace.Events[sl.Event]
			row[sl.Proc] = Cell{
				Present: true,
				Sig:     ev.CommSignature(),
				Size:    ev.Size,
				Compute: ev.ComputeBefore,
			}
			events++
		}
		cells[t-s] = row
	}
	return cells, events
}

// similar implements the paper's step 5 criteria.
func (x *extractor) similar(p *Phase, cells [][]Cell, events int) bool {
	if p.TickLen != len(cells) {
		return false // 5a: tick spans must match
	}
	total := p.Events
	if events > total {
		total = events
	}
	if total == 0 {
		return true
	}
	similarCount := 0
	for t := range cells {
		for pr := range cells[t] {
			a, b := p.Cells[t][pr], cells[t][pr]
			switch {
			case !a.Present && !b.Present:
				// No event on either side: not counted.
			case !a.Present || !b.Present:
				// 5b: "type 0" compares similar to anything.
				similarCount++
			default:
				if a.Sig == b.Sig &&
					ratioAtLeast(float64(a.Size), float64(b.Size), x.cfg.VolumeSimilarity) &&
					ratioAtLeast(float64(a.Compute), float64(b.Compute), x.cfg.ComputeSimilarity) {
					similarCount++
				}
			}
		}
	}
	return float64(similarCount) >= x.cfg.EventSimilarity*float64(total)
}

// ratioAtLeast reports whether min(a,b)/max(a,b) >= threshold, treating
// the pair (0,0) as similar.
func ratioAtLeast(a, b, threshold float64) bool {
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	if b <= 0 {
		return true
	}
	return a/b >= threshold
}

// Validate checks the tiling invariants: occurrences cover every tick
// exactly once and durations sum to the run length.
func (a *Analysis) Validate() error {
	n := a.Logical.NumTicks()
	covered := make([]int, n)
	var total vtime.Duration
	for _, p := range a.Phases {
		if p.Weight() < 1 {
			return fmt.Errorf("phase %d has no occurrences", p.ID)
		}
		for _, o := range p.Occurrences {
			if o.StartTick < 0 || o.EndTick > n || o.StartTick >= o.EndTick {
				return fmt.Errorf("phase %d occurrence [%d,%d) out of range", p.ID, o.StartTick, o.EndTick)
			}
			for t := o.StartTick; t < o.EndTick; t++ {
				covered[t]++
			}
			total += o.Dur
		}
	}
	for t, cnt := range covered {
		if cnt != 1 {
			return fmt.Errorf("tick %d covered %d times", t, cnt)
		}
	}
	if total > a.AET+vtime.Duration(n) || total < a.AET-a.AET/100-vtime.Duration(n) {
		return fmt.Errorf("phase durations sum to %v, application ran %v", total, a.AET)
	}
	return nil
}

// Summary renders the analysis like the paper's Table 3 header block.
func (a *Analysis) Summary() string {
	rel := a.Relevant()
	return fmt.Sprintf("Total of phases: %d, Relevant phases: %d", len(a.Phases), len(rel))
}

// SortedByTotalDur returns phases ordered by their share of the run,
// largest first (tie-broken by ID for determinism).
func (a *Analysis) SortedByTotalDur() []*Phase {
	out := append([]*Phase(nil), a.Phases...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].TotalDur(), out[j].TotalDur()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
