package phase

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/vtime"
)

// analyzeApp traces an app, orders it, and extracts phases.
func analyzeApp(t testing.TB, cluster *machine.Cluster, procs int, body func(c *mpi.Comm), cfg Config) *Analysis {
	t.Helper()
	d, err := machine.NewDeployment(cluster, procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "t", Procs: procs, Body: body},
		mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Extract(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// iterativeBody models a typical SPMD kernel: the same exchange +
// reduction every iteration, preceded by a distinct init segment.
func iterativeBody(iters int) func(c *mpi.Comm) {
	return func(c *mpi.Comm) {
		n := c.Size()
		// Init: a bcast and scatter-like sends with a unique tag.
		if c.Rank() == 0 {
			for s := 1; s < n; s++ {
				c.SendN(s, 99, 1<<12)
			}
		} else {
			c.RecvN(0, 99)
		}
		c.Barrier()
		for i := 0; i < iters; i++ {
			c.Compute(2e5)
			right := (c.Rank() + 1) % n
			left := (c.Rank() + n - 1) % n
			c.SendrecvN(right, 0, 2048, left, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	}
}

func TestExtractIterativeApp(t *testing.T) {
	a := analyzeApp(t, machine.ClusterA(), 8, iterativeBody(30), DefaultConfig())
	// The iteration body must fold into one dominant phase with weight
	// close to the iteration count.
	byDur := a.SortedByTotalDur()
	top := byDur[0]
	if top.Weight() < 25 {
		t.Errorf("dominant phase weight = %d, want ~30", top.Weight())
	}
	if len(a.Phases) > 6 {
		t.Errorf("found %d phases; the iterations did not fold", len(a.Phases))
	}
	// Relevance: the dominant phase must be relevant.
	rel := a.Relevant()
	if len(rel) == 0 {
		t.Fatal("no relevant phases")
	}
	found := false
	for _, p := range rel {
		if p.ID == top.ID {
			found = true
		}
	}
	if !found {
		t.Error("dominant phase not marked relevant")
	}
}

func TestPhaseDurationsTileAET(t *testing.T) {
	a := analyzeApp(t, machine.ClusterB(), 8, iterativeBody(20), DefaultConfig())
	var total vtime.Duration
	for _, p := range a.Phases {
		total += p.TotalDur()
	}
	// The tiling property: phase durations must reconstruct the run.
	diff := float64(total-a.AET) / float64(a.AET)
	if diff > 0.001 || diff < -0.02 {
		t.Errorf("phase durations %v vs AET %v (%.2f%%)", total, a.AET, diff*100)
	}
}

func TestEquationOneReconstructsAET(t *testing.T) {
	// With ALL phases included, Eq. (1) over mean phase times must
	// reproduce the base AET closely (the paper's own observation that
	// taking every phase drives the error toward zero).
	a := analyzeApp(t, machine.ClusterA(), 4, iterativeBody(25), DefaultConfig())
	tb, err := a.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	pet := tb.PredictedAET(false)
	ratio := float64(pet) / float64(a.AET)
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("Eq.1 over all phases: PET %v vs AET %v (ratio %.3f)", pet, a.AET, ratio)
	}
	// Relevant-only prediction loses only the irrelevant share.
	petRel := tb.PredictedAET(true)
	if petRel > pet {
		t.Error("relevant-only PET cannot exceed all-phase PET")
	}
	if float64(petRel) < 0.90*float64(a.AET) {
		t.Errorf("relevant-only PET %v lost too much of AET %v", petRel, a.AET)
	}
}

func TestMasterWorkerSinglePhase(t *testing.T) {
	// §6's pathological case: one send/recv round per worker with no
	// repetition folds into very few phases, and the dominant phase
	// has weight 1, so SET would approach AET.
	body := func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for s := 1; s < c.Size(); s++ {
				c.SendN(s, 0, 4096)
			}
			for s := 1; s < c.Size(); s++ {
				c.RecvN(mpi.AnySource, 1)
			}
		} else {
			c.RecvN(0, 0)
			c.Compute(1e6)
			c.SendN(0, 1, 4096)
		}
	}
	a := analyzeApp(t, machine.ClusterA(), 8, body, DefaultConfig())
	byDur := a.SortedByTotalDur()
	if byDur[0].Weight() != 1 {
		t.Errorf("master/worker dominant phase weight = %d, want 1", byDur[0].Weight())
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(nil, DefaultConfig()); err == nil {
		t.Error("nil logical trace should fail")
	}
	bad := DefaultConfig()
	bad.EventSimilarity = 0
	a := analyzeApp(t, machine.ClusterA(), 2, iterativeBody(3), DefaultConfig())
	if _, err := Extract(a.Logical, bad); err == nil {
		t.Error("zero similarity threshold should fail")
	}
	bad2 := DefaultConfig()
	bad2.RelevanceFraction = 1.5
	if _, err := Extract(a.Logical, bad2); err == nil {
		t.Error("relevance fraction > 1 should fail")
	}
}

func TestRatioAtLeast(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b, th float64
		want     bool
	}{
		{0, 0, 0.85, true},
		{100, 100, 0.85, true},
		{85, 100, 0.85, true},
		{84, 100, 0.85, false},
		{100, 85, 0.85, true},
		{0, 100, 0.85, false},
		{100, 0, 0.85, false},
		{1e9, 1e9 * 0.9, 0.85, true},
		// Negative (corrupt) inputs must never compare similar — the
		// old max<=0 shortcut silently matched all of these.
		{-5, -5, 0.85, false},
		{-5, -4, 0.85, false},
		{-1, 0, 0.85, false},
		{0, -1, 0.85, false},
		{-100, 100, 0.85, false},
		{100, -100, 0.85, false},
		// NaN anywhere is corrupt data: dissimilar.
		{nan, 100, 0.85, false},
		{100, nan, 0.85, false},
		{nan, nan, 0.85, false},
	}
	for _, c := range cases {
		if got := ratioAtLeast(c.a, c.b, c.th); got != c.want {
			t.Errorf("ratioAtLeast(%v,%v,%v) = %v", c.a, c.b, c.th, got)
		}
	}
}

func TestConfigValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mod := func(f func(c *Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"event NaN", mod(func(c *Config) { c.EventSimilarity = nan }), false},
		{"compute NaN", mod(func(c *Config) { c.ComputeSimilarity = nan }), false},
		{"volume NaN", mod(func(c *Config) { c.VolumeSimilarity = nan }), false},
		{"relevance NaN", mod(func(c *Config) { c.RelevanceFraction = nan }), false},
		{"event +Inf", mod(func(c *Config) { c.EventSimilarity = inf }), false},
		{"compute -Inf", mod(func(c *Config) { c.ComputeSimilarity = -inf }), false},
		{"volume +Inf", mod(func(c *Config) { c.VolumeSimilarity = inf }), false},
		{"relevance +Inf", mod(func(c *Config) { c.RelevanceFraction = inf }), false},
		{"relevance -Inf", mod(func(c *Config) { c.RelevanceFraction = -inf }), false},
		{"event zero", mod(func(c *Config) { c.EventSimilarity = 0 }), false},
		{"event above one", mod(func(c *Config) { c.EventSimilarity = 1.01 }), false},
		{"negative workers", mod(func(c *Config) { c.Workers = -1 }), false},
		{"parallel with workers", mod(func(c *Config) { c.ExtractParallel = true; c.Workers = 2 }), true},
	}
	for _, c := range cases {
		if err := c.cfg.validate(); (err == nil) != c.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSimilarityThresholdEffect(t *testing.T) {
	// Slightly jittered compute times: a strict compute threshold must
	// produce at least as many phases as the paper's 85%.
	body := func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 20; i++ {
			// 10% jitter alternating iterations.
			c.Compute(2e5 * (1 + 0.1*float64(i%2)))
			c.SendrecvN((c.Rank()+1)%n, 0, 2048, (c.Rank()+n-1)%n, 0)
		}
	}
	loose := DefaultConfig()
	strict := DefaultConfig()
	strict.ComputeSimilarity = 0.99
	strict.EventSimilarity = 0.99
	la := analyzeApp(t, machine.ClusterA(), 4, body, loose)
	sa := analyzeApp(t, machine.ClusterA(), 4, body, strict)
	if len(sa.Phases) < len(la.Phases) {
		t.Errorf("strict similarity found %d phases, loose found %d", len(sa.Phases), len(la.Phases))
	}
	if len(la.Phases) > 4 {
		t.Errorf("loose similarity should fold jittered iterations, got %d phases", len(la.Phases))
	}
}

func TestBuildTableBoundaries(t *testing.T) {
	a := analyzeApp(t, machine.ClusterA(), 4, iterativeBody(10), DefaultConfig())
	tb, err := a.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.TotalPhases != len(a.Phases) {
		t.Error("TotalPhases mismatch")
	}
	// Designated occurrence must be the second one (index 1) for
	// phases with weight > 1.
	for _, r := range tb.Rows {
		if r.Weight > 1 && r.Occurrence != 1 {
			t.Errorf("phase %d designated occurrence %d, want 1", r.PhaseID, r.Occurrence)
		}
		if r.Weight == 1 && r.Occurrence != 0 {
			t.Errorf("weight-1 phase %d designated occurrence %d, want 0", r.PhaseID, r.Occurrence)
		}
	}
	if _, err := a.BuildTable(-1); err == nil {
		t.Error("negative occurrence should fail")
	}
}

func TestTablePrint(t *testing.T) {
	a := analyzeApp(t, machine.ClusterA(), 4, iterativeBody(10), DefaultConfig())
	tb, err := a.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "PHASE_TABLE") || !strings.Contains(out, "Weight") {
		t.Errorf("table print missing headers:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	a := analyzeApp(t, machine.ClusterA(), 4, iterativeBody(10), DefaultConfig())
	s := a.Summary()
	if !strings.Contains(s, "Total of phases") {
		t.Errorf("summary = %q", s)
	}
}

func TestMachineIndependentPhases(t *testing.T) {
	// Phase structure (count, weights) must match across base machines
	// for a deterministic app — the heart of cross-machine prediction.
	var ref *Analysis
	for _, cl := range []*machine.Cluster{machine.ClusterA(), machine.ClusterC()} {
		a := analyzeApp(t, cl, 8, iterativeBody(15), DefaultConfig())
		if ref == nil {
			ref = a
			continue
		}
		if len(a.Phases) != len(ref.Phases) {
			t.Fatalf("%s: %d phases vs %d", cl.Name, len(a.Phases), len(ref.Phases))
		}
		for i := range a.Phases {
			if a.Phases[i].Weight() != ref.Phases[i].Weight() {
				t.Errorf("phase %d weight %d vs %d", i, a.Phases[i].Weight(), ref.Phases[i].Weight())
			}
			if a.Phases[i].TickLen != ref.Phases[i].TickLen {
				t.Errorf("phase %d ticklen differs", i)
			}
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	a := analyzeApp(t, machine.ClusterA(), 2, iterativeBody(5), DefaultConfig())
	// Corrupt: duplicate an occurrence.
	p := a.Phases[0]
	p.Occurrences = append(p.Occurrences, p.Occurrences[0])
	if err := a.Validate(); err == nil {
		t.Error("overlapping occurrences should fail validation")
	}
}
