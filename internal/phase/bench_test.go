package phase

import (
	"fmt"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
)

func benchLogical(b *testing.B, procs, iters int) *logical.Logical {
	b.Helper()
	d, err := machine.NewDeployment(machine.ClusterC(), procs, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "bench", Procs: procs, Body: func(c *mpi.Comm) {
		n := c.Size()
		if c.Rank() == 0 {
			for s := 1; s < n; s++ {
				c.SendN(s, 99, 4096)
			}
		} else {
			c.RecvN(0, 99)
		}
		c.Barrier()
		for i := 0; i < iters; i++ {
			c.Compute(1e4)
			c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	}}, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkExtract measures §3.3 phase extraction on a 32-rank trace.
func BenchmarkExtract(b *testing.B) {
	l := benchLogical(b, 32, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Extract(l, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(a.Phases)), "phases")
		}
	}
}

// benchAppLogical traces a registered workload on cluster C and
// orders it with the PAS2P ordering.
func benchAppLogical(b *testing.B, name, wl string, procs int) *logical.Logical {
	b.Helper()
	app, err := apps.Make(name, procs, wl)
	if err != nil {
		b.Fatal(err)
	}
	d, err := machine.NewDeployment(machine.ClusterC(), procs, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkExtractApps compares the extraction paths on real workload
// traces: "seed" is the pre-index full scan, "indexed" the
// fingerprint-indexed matcher, "parallel" the full engine with the
// fill pass and candidate scoring fanned out over the worker pool.
// lu/classD at 64 ranks is the largest trace internal/apps produces
// (897k events over 40k ticks); pop/synthetic240 is the densest. The
// golden tests prove all three paths return the identical Analysis.
func BenchmarkExtractApps(b *testing.B) {
	cases := []struct {
		name, wl string
		procs    int
	}{
		{"moldy", "tip4p", 64},
		{"sweep3d", "sweep.250", 64},
		{"lu", "classD", 64},
		{"pop", "synthetic240", 64},
		{"masterworker", "rounds50", 64},
		{"smg2000", "-n 200 solver 3", 64},
	}
	seedCfg := DefaultConfig()
	seedCfg.naiveMatch = true
	parCfg := DefaultConfig()
	parCfg.ExtractParallel = true
	modes := []struct {
		mode string
		cfg  Config
	}{
		{"seed", seedCfg},
		{"indexed", DefaultConfig()},
		{"parallel", parCfg},
	}
	for _, c := range cases {
		l := benchAppLogical(b, c.name, c.wl, c.procs)
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", c.name, m.mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a, err := Extract(l, m.cfg)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(len(a.Phases)), "phases")
						b.ReportMetric(float64(l.NumTicks()), "ticks")
					}
				}
			})
		}
	}
}

// BenchmarkBuildTable measures phase-table construction.
func BenchmarkBuildTable(b *testing.B) {
	l := benchLogical(b, 32, 100)
	a, err := Extract(l, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.BuildTable(1); err != nil {
			b.Fatal(err)
		}
	}
}
