package phase

import (
	"testing"

	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
)

func benchLogical(b *testing.B, procs, iters int) *logical.Logical {
	b.Helper()
	d, err := machine.NewDeployment(machine.ClusterC(), procs, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "bench", Procs: procs, Body: func(c *mpi.Comm) {
		n := c.Size()
		if c.Rank() == 0 {
			for s := 1; s < n; s++ {
				c.SendN(s, 99, 4096)
			}
		} else {
			c.RecvN(0, 99)
		}
		c.Barrier()
		for i := 0; i < iters; i++ {
			c.Compute(1e4)
			c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	}}, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkExtract measures §3.3 phase extraction on a 32-rank trace.
func BenchmarkExtract(b *testing.B) {
	l := benchLogical(b, 32, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Extract(l, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(a.Phases)), "phases")
		}
	}
}

// BenchmarkBuildTable measures phase-table construction.
func BenchmarkBuildTable(b *testing.B) {
	l := benchLogical(b, 32, 100)
	a, err := Extract(l, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.BuildTable(1); err != nil {
			b.Fatal(err)
		}
	}
}
