// Fingerprint index for phase matching. Every window gets a cheap
// structural profile — tick length, event count and a per-process
// comm-signature multiset — accumulated in flat, epoch-cleared hash
// tables rather than per-window maps. Phases are bucketed by tick
// length (the one hard invariant of the §3.3 similarity relation), and
// within a bucket a sound counting bound decides whether the full
// cell-by-cell test could possibly reach the event-similarity
// threshold before it is run.
package phase

// sigCount is one entry of a stored profile: a hashed
// (process, signature) key and how often it occurs.
type sigCount struct {
	key uint64
	cnt int32
}

// sigProfile summarises a phase's structure: how many events each
// process contributes and the multiset of (process, signature) pairs.
// Profiles are compacted out of the matcher's scratch table when a
// window becomes a new phase; transient windows never materialise one.
type sigProfile struct {
	events  int
	perProc []int32
	entries []sigCount
}

// sigKey mixes the owning process into the signature. A hash collision
// can only inflate the intersection estimate below, which keeps the
// pruning bound sound: it over-approximates attainable similarity.
func sigKey(proc int32, sig uint64) uint64 {
	return sig ^ (uint64(uint32(proc))+1)*0x9e3779b97f4a7c15
}

// fmix64 is the 64-bit avalanche finaliser; table probes need the
// key's entropy spread into the low bits the mask keeps.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// countTable is an open-addressed multiset counter over hashed keys
// with O(1) clearing: entries whose epoch is stale read as absent and
// their slots are free for reuse. Reusing one table across all windows
// of an extraction removes the per-window map allocations that would
// otherwise dominate profiling cost.
type countTable struct {
	key   []uint64
	cnt   []int32
	epoch []uint32
	cur   uint32
	n     int
	mask  uint64
}

func (ct *countTable) init(size int) {
	ct.key = make([]uint64, size)
	ct.cnt = make([]int32, size)
	ct.epoch = make([]uint32, size)
	ct.cur = 1
	ct.n = 0
	ct.mask = uint64(size - 1)
}

// reset discards every entry. Stale slots stay claimable, so probe
// chains never cross epochs.
func (ct *countTable) reset() {
	ct.cur++
	ct.n = 0
	if ct.cur == 0 { // epoch wrapped: stale slots could alias
		clear(ct.epoch)
		ct.cur = 1
	}
}

// inc bumps key's count by one.
func (ct *countTable) inc(key uint64) {
	if ct.n >= len(ct.key)*3/4 {
		ct.grow()
	}
	h := fmix64(key) & ct.mask
	for {
		if ct.epoch[h] != ct.cur {
			ct.key[h], ct.cnt[h], ct.epoch[h] = key, 1, ct.cur
			ct.n++
			return
		}
		if ct.key[h] == key {
			ct.cnt[h]++
			return
		}
		h = (h + 1) & ct.mask
	}
}

// get returns key's count this epoch, zero when absent.
func (ct *countTable) get(key uint64) int32 {
	h := fmix64(key) & ct.mask
	for {
		if ct.epoch[h] != ct.cur {
			return 0
		}
		if ct.key[h] == key {
			return ct.cnt[h]
		}
		h = (h + 1) & ct.mask
	}
}

func (ct *countTable) grow() {
	old := *ct
	ct.init(len(old.key) * 2)
	ct.cur = old.cur
	for i, e := range old.epoch {
		if e != old.cur {
			continue
		}
		h := fmix64(old.key[i]) & ct.mask
		for ct.epoch[h] == ct.cur {
			h = (h + 1) & ct.mask
		}
		ct.key[h], ct.cnt[h], ct.epoch[h] = old.key[i], old.cnt[i], ct.cur
		ct.n++
	}
}

// compact materialises the live entries as a stored profile slice.
func (ct *countTable) compact() []sigCount {
	out := make([]sigCount, 0, ct.n)
	for i, e := range ct.epoch {
		if e == ct.cur {
			out = append(out, sigCount{key: ct.key[i], cnt: ct.cnt[i]})
		}
	}
	return out
}

// firstTable maps (process, comm signature) to the tick of its first
// occurrence in the current window — the state behind the step-4
// repeat scan — again with epoch-based O(1) clearing. Unlike the
// pruning profiles it stores the pair exactly, because a collision
// here would change which tick counts as a repeat and break the
// bit-identity guarantee against the reference scan.
type firstTable struct {
	sig   []uint64
	proc  []int32
	tick  []int32
	epoch []uint32
	cur   uint32
	n     int
	mask  uint64
}

func (ft *firstTable) init(size int) {
	ft.sig = make([]uint64, size)
	ft.proc = make([]int32, size)
	ft.tick = make([]int32, size)
	ft.epoch = make([]uint32, size)
	ft.cur = 1
	ft.n = 0
	ft.mask = uint64(size - 1)
}

func (ft *firstTable) reset() {
	ft.cur++
	ft.n = 0
	if ft.cur == 0 {
		clear(ft.epoch)
		ft.cur = 1
	}
}

// insertOrGet records tick t as the first occurrence of (proc, sig)
// and returns -1, or returns the already recorded first-occurrence
// tick — exactly the semantics of the reference scan's firstSeen maps.
func (ft *firstTable) insertOrGet(sig uint64, proc int32, t int) int {
	if ft.n >= len(ft.sig)*3/4 {
		ft.grow()
	}
	h := fmix64(sigKey(proc, sig)) & ft.mask
	for {
		if ft.epoch[h] != ft.cur {
			ft.sig[h], ft.proc[h], ft.tick[h], ft.epoch[h] = sig, proc, int32(t), ft.cur
			ft.n++
			return -1
		}
		if ft.sig[h] == sig && ft.proc[h] == proc {
			return int(ft.tick[h])
		}
		h = (h + 1) & ft.mask
	}
}

func (ft *firstTable) grow() {
	old := *ft
	ft.init(len(old.sig) * 2)
	ft.cur = old.cur
	for i, e := range old.epoch {
		if e != old.cur {
			continue
		}
		h := fmix64(sigKey(old.proc[i], old.sig[i])) & ft.mask
		for ft.epoch[h] == ft.cur {
			h = (h + 1) & ft.mask
		}
		ft.sig[h], ft.proc[h], ft.tick[h], ft.epoch[h] = old.sig[i], old.proc[i], old.tick[i], ft.cur
		ft.n++
	}
}

// couldMatch reports whether the full similarity test between the
// matcher's current window (scratch profile in winTab/winPP) and a
// stored phase profile of the same tick length L could possibly reach
// eventSim. It bounds the attainable similar-cell count: with A_p and
// B_p events of process p on either side, at least
// Cmin = Σ_p max(0, A_p+B_p-L) cells hold an event on both sides
// (pigeonhole per process row), and a both-sides cell can only compare
// similar when its signatures match positionally — at most I of them
// can, where I is the multiset intersection of the profiles. Every
// cell with an event on exactly one side counts automatically (the
// paper's type-0 rule); with C both-sides cells there are A+B-2C of
// those, and the total A+B-2C+min(C,I) is non-increasing in C, so
// evaluating it at Cmin over-approximates every reachable outcome. If
// even that bound misses the threshold, the full test cannot pass.
func (m *matcher) couldMatch(prof *sigProfile, tickLen int, winEvents int) bool {
	total := winEvents
	if prof.events > total {
		total = prof.events
	}
	if total == 0 {
		return true
	}
	cmin := 0
	for p, c := range prof.perProc {
		if c := int(c) + int(m.winPP[p]) - tickLen; c > 0 {
			cmin += c
		}
	}
	// Iterating the stored side covers every key with a positive
	// minimum; window-only keys contribute nothing.
	inter := 0
	for _, e := range prof.entries {
		if c := m.winTab.get(e.key); c < e.cnt {
			inter += int(c)
		} else {
			inter += int(e.cnt)
		}
	}
	bound := winEvents + prof.events - 2*cmin
	if inter < cmin {
		bound += inter
	} else {
		bound += cmin
	}
	return float64(bound) >= m.cfg.EventSimilarity*float64(total)
}

// indexEntry pairs a recorded phase with its profile.
type indexEntry struct {
	phase *Phase
	prof  *sigProfile
}

// phaseIndex buckets phases by tick length — §3.3 step 5a — so a
// window only ever meets candidates it could legally fold into.
// Entries within a bucket stay in discovery (ID) order, preserving the
// sequential algorithm's first-match semantics.
type phaseIndex struct {
	buckets map[int][]indexEntry
}

func newPhaseIndex() *phaseIndex {
	return &phaseIndex{buckets: make(map[int][]indexEntry)}
}

func (ix *phaseIndex) candidates(tickLen int) []indexEntry {
	return ix.buckets[tickLen]
}

func (ix *phaseIndex) add(p *Phase, prof *sigProfile) {
	ix.buckets[p.TickLen] = append(ix.buckets[p.TickLen], indexEntry{phase: p, prof: prof})
}
