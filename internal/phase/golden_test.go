package phase

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
)

// goldenConfigs returns the three extraction modes that must agree bit
// for bit: the pre-index reference scan, the fingerprint-indexed
// matcher, and the indexed matcher with parallel candidate scoring.
func goldenConfigs() map[string]Config {
	seed := DefaultConfig()
	seed.naiveMatch = true
	indexed := DefaultConfig()
	parallel := DefaultConfig()
	parallel.ExtractParallel = true
	return map[string]Config{"seed": seed, "indexed": indexed, "parallel": parallel}
}

// assertAnalysesEqual fails unless the two analyses carry the same
// phases (IDs, spans, cells), weights, occurrence windows and relevant
// set.
func assertAnalysesEqual(t *testing.T, label string, want, got *Analysis) {
	t.Helper()
	if len(want.Phases) != len(got.Phases) {
		t.Fatalf("%s: %d phases, reference has %d", label, len(got.Phases), len(want.Phases))
	}
	for i, wp := range want.Phases {
		gp := got.Phases[i]
		if wp.ID != gp.ID || wp.TickLen != gp.TickLen || wp.Events != gp.Events {
			t.Fatalf("%s: phase %d header (ID=%d len=%d ev=%d) vs reference (ID=%d len=%d ev=%d)",
				label, i, gp.ID, gp.TickLen, gp.Events, wp.ID, wp.TickLen, wp.Events)
		}
		if !reflect.DeepEqual(wp.Occurrences, gp.Occurrences) {
			t.Fatalf("%s: phase %d occurrences differ:\n got %v\nwant %v", label, wp.ID, gp.Occurrences, wp.Occurrences)
		}
		if !reflect.DeepEqual(wp.Cells, gp.Cells) {
			t.Fatalf("%s: phase %d behaviour matrix differs", label, wp.ID)
		}
	}
	wrel, grel := want.Relevant(), got.Relevant()
	if len(wrel) != len(grel) {
		t.Fatalf("%s: %d relevant phases, reference has %d", label, len(grel), len(wrel))
	}
	for i := range wrel {
		if wrel[i].ID != grel[i].ID {
			t.Fatalf("%s: relevant set diverges at %d: phase %d vs %d", label, i, grel[i].ID, wrel[i].ID)
		}
	}
}

// assertAllModesAgree extracts a logical trace under every golden
// config and checks the indexed and parallel analyses against the
// reference scan.
func assertAllModesAgree(t *testing.T, label string, l *logical.Logical) {
	t.Helper()
	cfgs := goldenConfigs()
	ref, err := Extract(l, cfgs["seed"])
	if err != nil {
		t.Fatalf("%s: seed extraction: %v", label, err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("%s: seed analysis invalid: %v", label, err)
	}
	for _, mode := range []string{"indexed", "parallel"} {
		an, err := Extract(l, cfgs[mode])
		if err != nil {
			t.Fatalf("%s/%s: %v", label, mode, err)
		}
		assertAnalysesEqual(t, label+"/"+mode, ref, an)
	}
}

// TestGoldenIndexedMatchesSeed proves the fingerprint-indexed matcher
// (sequential and parallel) produces the identical Analysis as the
// pre-index scan on every registered workload, under both the PAS2P
// ordering and the Lamport baseline.
func TestGoldenIndexedMatchesSeed(t *testing.T) {
	// Smallest workload of every registered app, at a process count
	// every kernel accepts.
	workloads := map[string]string{
		"bt": "classA", "sp": "classA", "cg": "classA", "ft": "classA",
		"lu": "classA", "ep": "classA", "is": "classA",
		"gromacs":      "d.villin",
		"masterworker": "rounds5",
		"moldy":        "tip4p-short",
		"pop":          "synthetic60",
		"smg2000":      "-n 120 solver 3",
		"sweep3d":      "sweep.150",
	}
	d, err := machine.NewDeployment(machine.ClusterA(), 16, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range apps.Names() {
		wl, ok := workloads[name]
		if !ok {
			t.Errorf("app %q has no golden workload registered; add it", name)
			continue
		}
		name, wl := name, wl
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, err := apps.Make(name, 16, wl)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			for ord, order := range map[string]func(*trace.Trace) (*logical.Logical, error){
				"pas2p": logical.Order, "lamport": logical.OrderLamport,
			} {
				l, err := order(res.Trace)
				if err != nil {
					t.Fatalf("%s ordering: %v", ord, err)
				}
				assertAllModesAgree(t, name+"/"+ord, l)
			}
		})
	}
}

// genTrace runs a seeded random SPMD program (deadlock-free by
// construction: symmetric exchanges, collectives and master gathers)
// and returns its trace. The program is generated before the run so
// every rank replays the same deterministic op list.
func genTrace(t *testing.T, seed int64, procs int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type op struct {
		kind  int
		tag   int
		bytes int
		flops float64
	}
	nops := 8 + rng.Intn(25)
	ops := make([]op, nops)
	for i := range ops {
		ops[i] = op{
			kind:  rng.Intn(5),
			tag:   rng.Intn(4),
			bytes: 32 << rng.Intn(9),
			flops: float64(1+rng.Intn(40)) * 1e4,
		}
	}
	repeats := 2 + rng.Intn(5)
	app := mpi.App{Name: fmt.Sprintf("fuzz%d", seed), Procs: procs, Body: func(c *mpi.Comm) {
		n, me := c.Size(), c.Rank()
		for r := 0; r < repeats; r++ {
			for _, o := range ops {
				c.Compute(o.flops)
				switch o.kind {
				case 0:
					c.SendrecvN((me+1)%n, o.tag, o.bytes, (me+n-1)%n, o.tag)
				case 1:
					c.Allreduce([]float64{float64(me)}, mpi.Sum)
				case 2:
					c.Barrier()
				case 3:
					if me == 0 {
						for s := 1; s < n; s++ {
							c.RecvN(mpi.AnySource, o.tag)
						}
					} else {
						c.SendN(0, o.tag, o.bytes)
					}
				case 4:
					peer := me ^ 1
					if peer < n {
						c.SendrecvN(peer, o.tag, o.bytes, peer, o.tag)
					}
				}
			}
		}
	}}
	d, err := machine.NewDeployment(machine.ClusterB(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// TestGoldenRandomTraces is the fuzz-style property test: across
// random programs, orderings and similarity thresholds, the indexed
// and parallel matchers must reproduce the reference analysis exactly.
func TestGoldenRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tr := genTrace(t, seed, 8)
			for ord, order := range map[string]func(*trace.Trace) (*logical.Logical, error){
				"pas2p": logical.Order, "lamport": logical.OrderLamport,
			} {
				l, err := order(tr)
				if err != nil {
					t.Fatalf("%s: %v", ord, err)
				}
				assertAllModesAgree(t, ord, l)

				// Also sweep a tighter and a looser threshold set, which
				// shifts which candidates the index may prune.
				for _, ev := range []float64{0.6, 0.95} {
					seedCfg := DefaultConfig()
					seedCfg.EventSimilarity = ev
					seedCfg.ComputeSimilarity = 0.7
					seedCfg.naiveMatch = true
					ref, err := Extract(l, seedCfg)
					if err != nil {
						t.Fatal(err)
					}
					idxCfg := seedCfg
					idxCfg.naiveMatch = false
					idxCfg.ExtractParallel = true
					an, err := Extract(l, idxCfg)
					if err != nil {
						t.Fatal(err)
					}
					assertAnalysesEqual(t, fmt.Sprintf("%s/ev=%.2f", ord, ev), ref, an)
				}
			}
		})
	}
}
