package phase

import (
	"fmt"
	"io"

	"pas2p/internal/vtime"
)

// PhaseAttribution is the per-phase accounting of how faithfully the
// signature's designated pair measurement represents the phase: the
// spread of its occurrence durations, the pair actually designated,
// and the bias between that pair's completion-cut delta and the mean
// occurrence duration. It is the diagnostic that exposed the lu
// wavefront outlier: every occurrence of an SSOR sweep overlaps its
// neighbours, so the per-occurrence cut deltas range from ~0 (pipeline
// fill/drain) to the full steady-state step while Equation (1) needs
// the mean.
type PhaseAttribution struct {
	PhaseID  int
	Weight   int
	Relevant bool
	TickLen  int
	// MeanET is the mean occurrence duration, the quantity Eq. (1)
	// multiplies by Weight; MinOccDur/MaxOccDur bound the spread.
	MeanET    vtime.Duration
	MinOccDur vtime.Duration
	MaxOccDur vtime.Duration
	// PairIndex is the designated back-to-back occurrence (-1 when the
	// phase has none) and PairDur its base-run completion-cut delta —
	// what the executor's pair-delta estimator would report on the base
	// machine.
	PairIndex int
	PairDur   vtime.Duration
	// PairBiasPercent is 100·|PairDur−MeanET|/MeanET, and ETScale the
	// correction BuildTable records when the bias exceeds PairBiasGate.
	PairBiasPercent float64
	ETScale         float64
	// ContributionPercent is the phase's share of Σ Weightᵢ·MeanETᵢ
	// over all phases: how much of the prediction rides on this row.
	ContributionPercent float64
}

// Attribution computes the per-phase attribution table for the same
// designation BuildTable(warmOccurrence) would use.
func (a *Analysis) Attribution(warmOccurrence int) []PhaseAttribution {
	relevant := map[int]bool{}
	for _, p := range a.Relevant() {
		relevant[p.ID] = true
	}
	var total vtime.Duration
	for _, p := range a.Phases {
		total += p.TotalDur()
	}
	out := make([]PhaseAttribution, 0, len(a.Phases))
	for _, p := range a.Phases {
		at := PhaseAttribution{
			PhaseID:   p.ID,
			Weight:    p.Weight(),
			Relevant:  relevant[p.ID],
			TickLen:   p.TickLen,
			MeanET:    p.MeanET(),
			PairIndex: -1,
			ETScale:   1,
		}
		for i, occ := range p.Occurrences {
			if i == 0 || occ.Dur < at.MinOccDur {
				at.MinOccDur = occ.Dur
			}
			if occ.Dur > at.MaxOccDur {
				at.MaxOccDur = occ.Dur
			}
		}
		if _, pair := designate(p, warmOccurrence); pair >= 0 {
			at.PairIndex = pair
			at.PairDur = p.Occurrences[pair+1].Dur
			if at.MeanET > 0 {
				diff := float64(at.PairDur - at.MeanET)
				if diff < 0 {
					diff = -diff
				}
				at.PairBiasPercent = 100 * diff / float64(at.MeanET)
			}
			at.ETScale = etScaleFor(at.MeanET, at.PairDur)
		}
		if total > 0 {
			at.ContributionPercent = 100 * float64(p.TotalDur()) / float64(total)
		}
		out = append(out, at)
	}
	return out
}

// PrintAttribution renders an attribution table, flagging rows whose
// pair bias exceeds the gate.
func PrintAttribution(w io.Writer, rows []PhaseAttribution) {
	fmt.Fprintf(w, "%-8s %-8s %-4s %-8s %-12s %-12s %-12s %-12s %-9s %-8s %s\n",
		"PhaseID", "Weight", "Rel", "TickLen", "MeanET", "MinOcc", "MaxOcc", "PairDur", "Bias%", "Contrib%", "ETScale")
	for _, r := range rows {
		rel := ""
		if r.Relevant {
			rel = "yes"
		}
		flag := ""
		if r.PairBiasPercent > 100*PairBiasGate {
			flag = "  <- biased pair"
		}
		fmt.Fprintf(w, "%-8d %-8d %-4s %-8d %-12v %-12v %-12v %-12v %-9.2f %-8.2f %.4f%s\n",
			r.PhaseID, r.Weight, rel, r.TickLen, r.MeanET, r.MinOccDur, r.MaxOccDur,
			r.PairDur, r.PairBiasPercent, r.ContributionPercent, r.ETScale, flag)
	}
}
