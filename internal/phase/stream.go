// Out-of-core phase extraction: the §3.3 scan over a stream of
// logically-ordered ticks instead of a materialised Logical.
//
// The in-core runIndexed scan buffers the whole behaviour matrix and
// decides windows against it. The streaming extractor keeps only the
// rows of the *open* window — the span since the last startpoint —
// because every decision the scan makes is local to it: the repeat
// detector is the same epoch-cleared first-occurrence table (reset at
// every startpoint), occurrence durations come from a running
// completion-cut high-water mark, and the phase-table boundary counts
// come from per-process event counters snapshotted at window edges.
// Closed windows fold through the identical matcher (equality cache,
// fingerprint index, counting bound, early-exit scoring), so phase
// sets, occurrence lists and tables are bit-identical to Extract +
// BuildTable.
//
// Representative behaviour matrices are the one per-phase state whose
// total size is not O(window). Under a memory budget they live in a
// spill store: an LRU-resident set backed by one CRC-checked file per
// phase (written through the internal/fsx seam), loaded back on demand
// when the matcher scores a candidate. Spilling changes *where* a
// matrix is read from, never its content, so the budget only affects
// speed and RSS.
package phase

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"

	"pas2p/internal/fsx"
	"pas2p/internal/logical"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// TickSource feeds logically-ordered ticks to the streaming extractor;
// logical.TickReader implements it. Next returns io.EOF after the last
// tick; the returned Tick may be scratch reused by the following call.
type TickSource interface {
	Next() (*logical.Tick, error)
}

// StreamConfig extends the similarity knobs with the out-of-core
// memory policy.
type StreamConfig struct {
	Config
	// MemBudgetBytes caps the bytes of representative behaviour
	// matrices held resident; matrices beyond it spill to disk and are
	// reloaded on demand. 0 disables spilling (everything stays
	// in-core, like Extract).
	MemBudgetBytes int64
	// FS and SpillDir locate the spill files. FS defaults to the real
	// filesystem; SpillDir is required when MemBudgetBytes > 0 and is
	// created if missing.
	FS       fsx.FS
	SpillDir string
}

// StreamStats counts what the out-of-core machinery actually did.
type StreamStats struct {
	// Ticks is the logical length of the trace.
	Ticks int
	// SpilledPhases is how many distinct phase matrices were ever
	// written to the spill store.
	SpilledPhases int
	// SpillLoads is how many times a matrix was read back for scoring.
	SpillLoads int64
	// SpillBytes is the total bytes written to spill files.
	SpillBytes int64
}

// StreamResult is the outcome of one streaming extraction: the
// analysis (Logical is nil — the trace was never materialised), the
// phase table, and the spill statistics.
type StreamResult struct {
	Analysis *Analysis
	Table    *Table
	Stats    StreamStats
	store    *spillStore
}

// MaterializeCells populates Phase.Cells for every phase from the
// spill store (a no-op without a budget). It trades the memory bound
// away for in-core access — call it only when the matrices are needed,
// e.g. to compare analyses in tests.
func (r *StreamResult) MaterializeCells() error {
	if r.store == nil {
		return nil
	}
	return r.store.materialize()
}

// Close deletes the spill files. The analysis and table stay valid;
// un-materialised Cells do not.
func (r *StreamResult) Close() error {
	if r.store == nil {
		return nil
	}
	return r.store.close()
}

// ctxCheckEvery is how many ticks pass between context checks.
const ctxCheckEvery = 1024

// ExtractStreamTable runs the §3.3 extraction and the phase-table
// derivation over a tick stream in one bounded-memory pass. meta is
// the source tracefile's header (app name, process count, base AET);
// warmOccurrence selects the designated occurrence exactly as
// BuildTable does.
func ExtractStreamTable(ctx context.Context, src TickSource, meta trace.Meta, warmOccurrence int, cfg StreamConfig) (*StreamResult, error) {
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}
	if warmOccurrence < 0 {
		return nil, fmt.Errorf("phase: negative warm occurrence index")
	}
	if meta.Procs <= 0 {
		return nil, fmt.Errorf("phase: tracefile header declares %d processes", meta.Procs)
	}
	var store *spillStore
	if cfg.MemBudgetBytes > 0 {
		fs := cfg.FS
		if fs == nil {
			fs = fsx.OS{}
		}
		if cfg.SpillDir == "" {
			return nil, fmt.Errorf("phase: memory budget set but no spill directory")
		}
		if err := fs.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("phase: creating spill dir: %w", err)
		}
		store = &spillStore{fs: fs, dir: cfg.SpillDir, budget: cfg.MemBudgetBytes,
			procs: meta.Procs, entries: map[int]*spillEntry{}}
	}
	sp := cfg.Observer.StartSpan("phase.extract.stream")
	x := &streamExtractor{
		cfg:        cfg.Config,
		procs:      meta.Procs,
		m:          newMatcher(cfg.Config),
		store:      store,
		an:         &Analysis{Config: cfg.Config, AET: meta.AET},
		warm:       warmOccurrence,
		baseCounts: make([]int64, meta.Procs),
		cum:        make([]int64, meta.Procs),
		cacheBufs:  map[int]*cacheBuf{},
	}
	if store != nil {
		x.m.cellsOf = store.cells
	}
	x.ft.init(512)

	for i := 0; ; i++ {
		if i%ctxCheckEvery == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		x.ingest(tk)
		if x.err != nil {
			return nil, x.err
		}
	}
	if x.nTicks == 0 {
		return nil, fmt.Errorf("phase: empty logical trace")
	}
	// Trailing window, exactly like the in-core scan's final close.
	x.closeWindow(x.start, x.nTicks)
	if x.err != nil {
		return nil, x.err
	}

	tb := x.finishTable(meta)
	res := &StreamResult{Analysis: x.an, Table: tb, store: store}
	res.Stats.Ticks = x.nTicks
	if store != nil {
		res.Stats.SpilledPhases, res.Stats.SpillLoads, res.Stats.SpillBytes = store.stats()
	}
	sp.SetCounter("ticks", int64(x.nTicks))
	sp.SetCounter("phases_found", int64(len(x.an.Phases)))
	sp.SetCounter("windows_scored", x.m.nScored)
	sp.SetCounter("windows_pruned", x.m.nPruned)
	sp.SetCounter("window_cache_hits", x.m.nCacheHits)
	sp.SetCounter("spilled_phases", int64(res.Stats.SpilledPhases))
	sp.SetCounter("spill_loads", res.Stats.SpillLoads)
	sp.End()
	return res, nil
}

// occSnap freezes one occurrence's table-relevant view: its index
// within the phase, its tick window and the per-process event counts
// at its boundaries. Snapshots are immutable once taken.
type occSnap struct {
	idx                int
	startTick, endTick int
	startEv, endEv     []int64
	dur                vtime.Duration
}

// rowState accumulates, per phase, exactly what the streaming table
// builder needs to reproduce designate() without the occurrence list:
// the latest occurrence, the warm-index occurrence, and the first
// back-to-back pair at or past the warm index (frozen when its second
// half arrives — occurrences arrive in tick order, so the first pair
// seen is the first pair there is).
type rowState struct {
	lastSet  bool
	last     occSnap
	warmSet  bool
	warmSnap occSnap
	frozen   bool
	pairIdx  int
	pairOcc  occSnap
	pair2End []int64
	pair2Dur vtime.Duration
}

// cacheBuf is a per-tick-length stable copy target for the matcher's
// window-equality cache: the open window's rows are recycled at every
// restart, so a cached window must own its storage. One buffer per
// bucket suffices — setCache replaces the bucket's previous entry, and
// the copy happens strictly after the current window's cacheHit
// compare.
type cacheBuf struct {
	flat []Cell
	rows [][]Cell
}

type streamExtractor struct {
	cfg   Config
	procs int
	m     *matcher
	store *spillStore
	an    *Analysis
	err   error

	// Open-window state: rows buffered since the current startpoint.
	start     int
	cutStart  vtime.Time   // completion cut at the startpoint
	hw        vtime.Time   // running completion-cut high-water mark
	rows      [][]Cell     // behaviour rows for ticks [start, t)
	rowExit   []vtime.Time // per-row max event exit
	rowEvents []int        // per-row present-cell count
	rowPool   [][]Cell     // recycled row storage
	ft        firstTable

	// Per-process event counters for table boundaries: cum counts all
	// consumed ticks, baseCounts is cum frozen at the startpoint.
	baseCounts []int64
	cum        []int64

	warm      int
	rstate    []*rowState // indexed by phase ID-1
	cacheBufs map[int]*cacheBuf

	nTicks int
}

// ingest advances the scan by one tick: repeat-scan it, close windows
// if it repeats, then append its row to the open window. Mirrors one
// iteration of runIndexed's tick loop.
func (x *streamExtractor) ingest(tk *logical.Tick) {
	t := tk.Index
	repeatFirst := -1
	for _, sl := range tk.Slots {
		if f := x.ft.insertOrGet(sl.Sig, sl.Proc, t); f >= 0 && (repeatFirst < 0 || f < repeatFirst) {
			repeatFirst = f
		}
	}
	if repeatFirst >= 0 {
		if repeatFirst == x.start {
			// Step 4a: one full period [start, t).
			x.closeWindow(x.start, t)
		} else {
			// Step 4b: partition into phase a and phase b.
			x.closeWindow(x.start, repeatFirst)
			x.closeWindow(repeatFirst, t)
		}
		if x.err != nil {
			return
		}
		// Step 6: new startpoint at t; the repeated event opens the new
		// window.
		x.rowPool = append(x.rowPool, x.rows...)
		x.rows = x.rows[:0]
		x.rowExit = x.rowExit[:0]
		x.rowEvents = x.rowEvents[:0]
		x.start = t
		x.cutStart = x.hw
		copy(x.baseCounts, x.cum)
		x.ft.reset()
		for _, sl := range tk.Slots {
			x.ft.insertOrGet(sl.Sig, sl.Proc, t)
		}
	}
	var row []Cell
	if n := len(x.rowPool); n > 0 {
		row = x.rowPool[n-1]
		x.rowPool[n-1] = nil
		x.rowPool = x.rowPool[:n-1]
		clear(row)
	} else {
		row = make([]Cell, x.procs)
	}
	var exitMax vtime.Time
	for _, sl := range tk.Slots {
		row[sl.Proc] = Cell{Present: true, Sig: sl.Sig, Size: sl.Size, Compute: sl.Compute}
		if sl.Exit > exitMax {
			exitMax = sl.Exit
		}
		x.cum[sl.Proc]++
	}
	x.rows = append(x.rows, row)
	x.rowExit = append(x.rowExit, exitMax)
	x.rowEvents = append(x.rowEvents, len(tk.Slots))
	if exitMax > x.hw {
		x.hw = exitMax
	}
	x.nTicks++
}

// cutAt returns the completion cut at window boundary b (start <= b <=
// current tick): the running max of event exits over all ticks < b,
// identical to the in-core cuts array.
func (x *streamExtractor) cutAt(b int) vtime.Time {
	c := x.cutStart
	for _, e := range x.rowExit[:b-x.start] {
		if e > c {
			c = e
		}
	}
	return c
}

// countsAt returns, per process, how many events precede window
// boundary b — the same numbers BuildTable's eventsBefore binary
// search yields, counted incrementally.
func (x *streamExtractor) countsAt(b int) []int64 {
	out := make([]int64, x.procs)
	if b-x.start >= len(x.rows) {
		copy(out, x.cum)
		return out
	}
	copy(out, x.baseCounts)
	for _, row := range x.rows[:b-x.start] {
		for p := range row {
			if row[p].Present {
				out[p]++
			}
		}
	}
	return out
}

// closeWindow folds [s,e) through the matching engine — the streaming
// twin of savePhaseCells, plus the occurrence snapshot for the table.
func (x *streamExtractor) closeWindow(s, e int) {
	if e <= s {
		return
	}
	cells := x.rows[s-x.start : e-x.start : e-x.start]
	events := 0
	for _, n := range x.rowEvents[s-x.start : e-x.start] {
		events += n
	}
	occ := Occurrence{StartTick: s, EndTick: e, Dur: x.cutAt(e).Sub(x.cutAt(s))}
	var ph *Phase
	if match := x.m.cacheHit(cells, events); match != nil {
		match.Occurrences = append(match.Occurrences, occ)
		ph = match
	} else if match := x.m.match(cells, events); match != nil {
		x.setCacheCopy(cells, events, match)
		match.Occurrences = append(match.Occurrences, occ)
		ph = match
	} else {
		owned := copyCells(cells)
		np := &Phase{
			ID:          len(x.an.Phases) + 1,
			TickLen:     len(cells),
			Events:      events,
			Occurrences: []Occurrence{occ},
		}
		x.an.Phases = append(x.an.Phases, np)
		x.m.addCurrent(np, owned)
		x.m.setCache(owned, events, np)
		if x.store != nil {
			x.store.adopt(np, owned)
		} else {
			np.Cells = owned
		}
		x.rstate = append(x.rstate, &rowState{})
		ph = np
	}
	if x.store != nil {
		if err := x.store.takeErr(); err != nil {
			x.err = err
			return
		}
	}
	x.noteOccurrence(ph, occ)
}

// setCacheCopy stores the window in the matcher's equality cache
// through the bucket's stable buffer (live rows recycle at restarts).
func (x *streamExtractor) setCacheCopy(cells [][]Cell, events int, p *Phase) {
	L := len(cells)
	b := x.cacheBufs[L]
	if b == nil {
		flat := make([]Cell, L*x.procs)
		b = &cacheBuf{flat: flat, rows: make([][]Cell, L)}
		for t := range b.rows {
			b.rows[t] = flat[t*x.procs : (t+1)*x.procs : (t+1)*x.procs]
		}
		x.cacheBufs[L] = b
	}
	for t, row := range cells {
		copy(b.rows[t], row)
	}
	x.m.setCache(b.rows, events, p)
}

// noteOccurrence feeds the streaming table builder: remember the warm
// occurrence, the latest one, and freeze the designated back-to-back
// pair the moment its second half arrives.
func (x *streamExtractor) noteOccurrence(ph *Phase, occ Occurrence) {
	rs := x.rstate[ph.ID-1]
	k := len(ph.Occurrences) - 1
	snap := occSnap{
		idx: k, startTick: occ.StartTick, endTick: occ.EndTick,
		startEv: x.countsAt(occ.StartTick), endEv: x.countsAt(occ.EndTick),
		dur: occ.Dur,
	}
	if !rs.frozen && rs.lastSet && rs.last.idx >= x.warm && rs.last.endTick == occ.StartTick {
		rs.frozen = true
		rs.pairIdx = rs.last.idx
		rs.pairOcc = rs.last
		rs.pair2End = snap.endEv
		rs.pair2Dur = occ.Dur
	}
	if k == x.warm {
		rs.warmSet = true
		rs.warmSnap = snap
	}
	rs.last = snap
	rs.lastSet = true
}

// finishTable assembles the phase table from the per-phase snapshots.
// The designation rule is exactly BuildTable's designate(): the warm
// index clamped to the last occurrence, advanced to the first
// back-to-back pair at or past it.
func (x *streamExtractor) finishTable(meta trace.Meta) *Table {
	relevant := map[int]bool{}
	for _, p := range x.an.Relevant() {
		relevant[p.ID] = true
	}
	tb := &Table{
		AppName:     meta.AppName,
		Procs:       x.procs,
		BaseAET:     x.an.AET,
		TotalPhases: len(x.an.Phases),
	}
	for _, p := range x.an.Phases {
		rs := x.rstate[p.ID-1]
		var snap occSnap
		switch {
		case rs.frozen:
			snap = rs.pairOcc
		case len(p.Occurrences)-1 < x.warm:
			snap = rs.last
		default:
			snap = rs.warmSnap
		}
		row := TableRow{
			PhaseID:     p.ID,
			Weight:      p.Weight(),
			PhaseET:     p.MeanET(),
			Relevant:    relevant[p.ID],
			Occurrence:  snap.idx,
			StartTick:   snap.startTick,
			EndTick:     snap.endTick,
			StartEvents: snap.startEv,
			EndEvents:   snap.endEv,
		}
		if rs.frozen {
			row.HasPair = true
			row.End2Events = rs.pair2End
			row.ETScale = etScaleFor(row.PhaseET, rs.pair2Dur)
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// --- spill store ---

// spillCellBytes is the on-disk size of one cell: present flag,
// signature, size, compute time.
const spillCellBytes = 1 + 8 + 8 + 8

// residentCellBytes estimates one cell's in-memory footprint for the
// budget accounting.
const residentCellBytes = 32

// spillTable is the Castagnoli table the spill codec shares with the
// tracefile format.
var spillTable = crc32.MakeTable(crc32.Castagnoli)

type spillEntry struct {
	ph      *Phase
	cells   [][]Cell // nil while evicted
	bytes   int64
	lastSeq int64
	onDisk  bool
}

// spillStore owns every phase's representative matrix during a
// budgeted extraction: a mutex-guarded resident set with LRU eviction
// to one CRC-checked file per phase. Phase.Cells stays nil throughout,
// so concurrent matcher workers never race on it — all access funnels
// through cells().
type spillStore struct {
	fs     fsx.FS
	dir    string
	budget int64
	procs  int

	mu         sync.Mutex
	entries    map[int]*spillEntry
	resident   int64
	seq        int64
	firstErr   error
	spilled    int
	loads      int64
	spillBytes int64
}

func (s *spillStore) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("phase-%06d.cells", id))
}

// adopt takes ownership of a freshly discovered phase's matrix.
func (s *spillStore) adopt(p *Phase, cells [][]Cell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	e := &spillEntry{ph: p, cells: cells,
		bytes: int64(p.TickLen) * int64(s.procs) * residentCellBytes, lastSeq: s.seq}
	s.entries[p.ID] = e
	s.resident += e.bytes
	s.evict(p.ID)
}

// cells returns a phase's matrix for scoring, loading it from the
// spill file if it was evicted. Safe for concurrent use; on I/O error
// it records the error and returns an all-absent matrix of the right
// shape so the caller's scan stays in bounds (the extraction aborts at
// the next error check).
func (s *spillStore) cells(p *Phase) [][]Cell {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[p.ID]
	if e == nil {
		s.fail(fmt.Errorf("phase: spill store has no entry for phase %d", p.ID))
		return zeroCells(p.TickLen, s.procs)
	}
	s.seq++
	e.lastSeq = s.seq
	if e.cells != nil {
		return e.cells
	}
	cells, err := s.load(p)
	if err != nil {
		s.fail(err)
		return zeroCells(p.TickLen, s.procs)
	}
	s.loads++
	e.cells = cells
	s.resident += e.bytes
	s.evict(p.ID)
	return cells
}

// evict spills least-recently-used matrices until the resident set
// fits the budget, never touching excludeID (the entry being served).
// Callers hold s.mu.
func (s *spillStore) evict(excludeID int) {
	for s.resident > s.budget {
		var victim *spillEntry
		vid := -1
		for id, e := range s.entries {
			if id == excludeID || e.cells == nil {
				continue
			}
			if victim == nil || e.lastSeq < victim.lastSeq {
				victim, vid = e, id
			}
		}
		if victim == nil {
			return
		}
		if !victim.onDisk {
			data := encodeSpill(victim.cells)
			if err := s.writeFile(s.path(vid), data); err != nil {
				s.fail(err)
				return
			}
			victim.onDisk = true
			s.spilled++
			s.spillBytes += int64(len(data))
		}
		victim.cells = nil
		s.resident -= victim.bytes
	}
}

func (s *spillStore) writeFile(path string, data []byte) error {
	f, err := s.fs.Create(path)
	if err != nil {
		return fmt.Errorf("phase: creating spill file: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("phase: writing %s: %w", path, err)
	}
	// Spill files are scratch, not durable artefacts: a crash reruns
	// the analysis, so no Sync before Close.
	if err := f.Close(); err != nil {
		return fmt.Errorf("phase: closing %s: %w", path, err)
	}
	return nil
}

// load reads a phase's matrix back, verifying shape and checksum.
func (s *spillStore) load(p *Phase) ([][]Cell, error) {
	data, err := s.fs.ReadFile(s.path(p.ID))
	if err != nil {
		return nil, fmt.Errorf("phase: reading spilled matrix of phase %d: %w", p.ID, err)
	}
	return decodeSpill(data, p.ID, p.TickLen, s.procs)
}

// fail records the first error; later calls keep it.
func (s *spillStore) fail(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
}

// takeErr returns the first recorded error.
func (s *spillStore) takeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *spillStore) stats() (spilled int, loads, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled, s.loads, s.spillBytes
}

// materialize sets Phase.Cells on every phase, loading evicted
// matrices from disk. The budget is no longer enforced afterwards.
func (s *spillStore) materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstErr != nil {
		return s.firstErr
	}
	for _, e := range s.entries {
		if e.cells == nil {
			cells, err := s.load(e.ph)
			if err != nil {
				return err
			}
			e.cells = cells
			s.resident += e.bytes
		}
		e.ph.Cells = e.cells
	}
	return nil
}

// close removes the spill files and the directory (best effort on the
// directory: it may hold unrelated files).
func (s *spillStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, e := range s.entries {
		if !e.onDisk {
			continue
		}
		if err := s.fs.Remove(s.path(id)); err != nil && first == nil {
			first = err
		}
		e.onDisk = false
	}
	s.fs.Remove(s.dir)
	return first
}

func zeroCells(tickLen, procs int) [][]Cell {
	flat := make([]Cell, tickLen*procs)
	out := make([][]Cell, tickLen)
	for t := range out {
		out[t] = flat[t*procs : (t+1)*procs : (t+1)*procs]
	}
	return out
}

// encodeSpill serialises a matrix: tick length, process count, the
// cells row-major, and a trailing CRC32C over everything before it.
func encodeSpill(cells [][]Cell) []byte {
	tickLen := len(cells)
	procs := 0
	if tickLen > 0 {
		procs = len(cells[0])
	}
	buf := make([]byte, 8+tickLen*procs*spillCellBytes+4)
	binary.LittleEndian.PutUint32(buf[0:], uint32(tickLen))
	binary.LittleEndian.PutUint32(buf[4:], uint32(procs))
	off := 8
	for _, row := range cells {
		for i := range row {
			c := &row[i]
			if c.Present {
				buf[off] = 1
			}
			binary.LittleEndian.PutUint64(buf[off+1:], c.Sig)
			binary.LittleEndian.PutUint64(buf[off+9:], uint64(c.Size))
			binary.LittleEndian.PutUint64(buf[off+17:], uint64(c.Compute))
			off += spillCellBytes
		}
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], spillTable))
	return buf
}

// decodeSpill parses and verifies a spilled matrix against the shape
// the phase declares.
func decodeSpill(data []byte, id, tickLen, procs int) ([][]Cell, error) {
	want := 8 + tickLen*procs*spillCellBytes + 4
	if len(data) != want {
		return nil, fmt.Errorf("phase: spilled matrix of phase %d is %d bytes, want %d", id, len(data), want)
	}
	if got, wantLen := binary.LittleEndian.Uint32(data[0:]), uint32(tickLen); got != wantLen {
		return nil, fmt.Errorf("phase: spilled matrix of phase %d declares tick length %d, phase has %d", id, got, wantLen)
	}
	if got := binary.LittleEndian.Uint32(data[4:]); got != uint32(procs) {
		return nil, fmt.Errorf("phase: spilled matrix of phase %d declares %d processes, trace has %d", id, got, procs)
	}
	body := data[:len(data)-4]
	crc := crc32.Checksum(body, spillTable)
	if got := binary.LittleEndian.Uint32(data[len(data)-4:]); got != crc {
		return nil, fmt.Errorf("phase: spilled matrix of phase %d checksum mismatch (stored %08x, computed %08x)", id, got, crc)
	}
	out := zeroCells(tickLen, procs)
	off := 8
	for _, row := range out {
		for i := range row {
			row[i] = Cell{
				Present: data[off] != 0,
				Sig:     binary.LittleEndian.Uint64(data[off+1:]),
				Size:    int64(binary.LittleEndian.Uint64(data[off+9:])),
				Compute: vtime.Duration(binary.LittleEndian.Uint64(data[off+17:])),
			}
			off += spillCellBytes
		}
	}
	return out, nil
}
