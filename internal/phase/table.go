package phase

import (
	"fmt"
	"io"
	"sort"

	"pas2p/internal/vtime"
)

// TableRow describes one phase in the phase table (the paper's Fig. 7):
// where the designated occurrence starts and ends — expressed as
// per-process replay positions — plus the phase id and weight. The
// original tool keys boundaries by per-process send counts; we use
// per-process event counts, which identify the same replay positions
// exactly and also handle processes that receive without sending.
type TableRow struct {
	PhaseID int
	Weight  int
	// PhaseET is the mean occurrence duration on the base machine.
	PhaseET vtime.Duration
	// Relevant marks rows that pass the 1 percent rule; the signature
	// is built from relevant rows only (the ablation flips this).
	Relevant bool
	// StartEvents[p] / EndEvents[p] are how many events process p has
	// completed at the designated occurrence's start / end boundary.
	StartEvents []int64
	EndEvents   []int64
	// Occurrence is which appearance of the phase was designated for
	// checkpointing (0-based); the paper checkpoints after the phase
	// has already run a few times so the machine is warm.
	Occurrence int
	// StartTick/EndTick are the designated occurrence's logical window,
	// used to order signature segments and for reporting.
	StartTick, EndTick int
	// HasPair marks rows whose designated occurrence is immediately
	// followed by another occurrence of the same phase. The signature
	// then measures through both and reports the delta between their
	// completion cuts — the marginal per-repetition cost, which keeps
	// pipelined (wavefront) phases from charging their pipeline fill
	// to every weighted repetition. End2Events[p] is the second
	// occurrence's end boundary.
	HasPair    bool
	End2Events []int64
	// ETScale corrects the pair-delta measurement for phases whose
	// occurrences overlap physically (wavefront pipelining): when the
	// base run shows the designated pair's completion-cut delta
	// deviating from the phase's mean occurrence duration by more than
	// PairBiasGate, the executor multiplies its measured delta by this
	// factor so Equation (1) charges the mean per-repetition cost, not
	// the steady-state cut of one arbitrary occurrence. 1 means the
	// pair is unbiased; 0 (absent in pre-correction persisted tables)
	// is treated as 1 by the executor.
	ETScale float64
}

// Table is the phase table shipped with a signature.
type Table struct {
	AppName string
	Procs   int
	// BaseAET is the application execution time on the base machine.
	BaseAET vtime.Duration
	Rows    []TableRow
	// TotalPhases is the phase count before relevance filtering.
	TotalPhases int
}

// RelevantRows returns only the rows the 1 percent rule kept.
func (t *Table) RelevantRows() []TableRow {
	var out []TableRow
	for _, r := range t.Rows {
		if r.Relevant {
			out = append(out, r)
		}
	}
	return out
}

// PredictedAET applies the paper's Equation (1), PET = Σ PhaseETᵢ·Wᵢ,
// to the table's own base-machine phase times (a self-check: with all
// phases included this reconstructs the base AET).
func (t *Table) PredictedAET(relevantOnly bool) vtime.Duration {
	var pet vtime.Duration
	for _, r := range t.Rows {
		if relevantOnly && !r.Relevant {
			continue
		}
		pet += r.PhaseET * vtime.Duration(r.Weight)
	}
	return pet
}

// BuildTable derives the phase table from an analysis, designating for
// each phase the occurrence with index min(warmOccurrence, weight-1) —
// checkpointing a later occurrence guarantees the machine components
// (caches, TLBs) are warm when the phase is measured.
func (a *Analysis) BuildTable(warmOccurrence int) (*Table, error) {
	if warmOccurrence < 0 {
		return nil, fmt.Errorf("phase: negative warm occurrence index")
	}
	procs := a.Logical.Trace.Procs
	// prefix[p] holds the sorted tick positions of process p's events,
	// so "events completed before tick t" is a binary search.
	prefix := make([][]int64, procs)
	per := a.Logical.Trace.PerProcess()
	for p := 0; p < procs; p++ {
		ts := make([]int64, len(per[p]))
		for i := range per[p] {
			ts[i] = per[p][i].LT
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		prefix[p] = ts
	}
	eventsBefore := func(p int, tick int) int64 {
		ts := prefix[p]
		lo, hi := 0, len(ts)
		for lo < hi {
			mid := (lo + hi) / 2
			if ts[mid] < int64(tick) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}

	relevant := map[int]bool{}
	for _, p := range a.Relevant() {
		relevant[p.ID] = true
	}
	tb := &Table{
		AppName:     a.Logical.Trace.AppName,
		Procs:       procs,
		BaseAET:     a.AET,
		TotalPhases: len(a.Phases),
	}
	for _, p := range a.Phases {
		oi, pair := designate(p, warmOccurrence)
		occ := p.Occurrences[oi]
		row := TableRow{
			PhaseID:     p.ID,
			Weight:      p.Weight(),
			PhaseET:     p.MeanET(),
			Relevant:    relevant[p.ID],
			Occurrence:  oi,
			StartTick:   occ.StartTick,
			EndTick:     occ.EndTick,
			StartEvents: make([]int64, procs),
			EndEvents:   make([]int64, procs),
		}
		for pr := 0; pr < procs; pr++ {
			row.StartEvents[pr] = eventsBefore(pr, occ.StartTick)
			row.EndEvents[pr] = eventsBefore(pr, occ.EndTick)
		}
		if pair >= 0 {
			occ2 := p.Occurrences[pair+1]
			row.HasPair = true
			row.End2Events = make([]int64, procs)
			for pr := 0; pr < procs; pr++ {
				row.End2Events[pr] = eventsBefore(pr, occ2.EndTick)
			}
			row.ETScale = etScaleFor(row.PhaseET, occ2.Dur)
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb, nil
}

// designate picks the occurrence a signature checkpoints for phase p:
// the warm-occurrence index, advanced to the first occurrence from
// there that is immediately followed by another occurrence of the same
// phase (back-to-back in tick order), so the signature can measure the
// marginal per-repetition cost. pair is -1 when no back-to-back pair
// exists; otherwise oi == pair.
func designate(p *Phase, warmOccurrence int) (oi, pair int) {
	oi = warmOccurrence
	if oi >= len(p.Occurrences) {
		oi = len(p.Occurrences) - 1
	}
	pair = -1
	for k := oi; k+1 < len(p.Occurrences); k++ {
		if p.Occurrences[k].EndTick == p.Occurrences[k+1].StartTick {
			pair = k
			break
		}
	}
	if pair >= 0 {
		oi = pair
	}
	return oi, pair
}

// PairBiasGate is the relative deviation between a phase's mean
// occurrence duration and its designated pair's completion-cut delta
// beyond which BuildTable records an ETScale correction. Phases whose
// occurrences tile time cleanly sit well under the gate (their pair
// delta *is* the mean), so their predictions stay bit-identical;
// pipelined wavefront phases, whose occurrence durations range from
// near zero (fill/drain) to the full steady-state step, blow far past
// it.
const PairBiasGate = 0.05

// etScaleFor computes the pair-bias correction factor: the ratio of
// the mean occurrence duration to the base-run pair delta, or exactly
// 1 when the pair is representative (within PairBiasGate) or the delta
// carries no information (zero-duration cut).
//
// The correction is one-sided: only ratios below 1 (the pair cut runs
// slower than the phase's mean occurrence) are recorded. That is the
// structural wavefront-pipelining signature — the back-to-back pair
// sits on the steady-state plateau while fill/drain occurrences are
// cheaper — and the ratio is a property of the dependence structure,
// so it transfers across machines. Ratios above 1 mean the pair
// happened to land on a *cheap* occurrence, which in practice comes
// from contention or scheduling noise; the executor's own pair
// measurement re-experiences the target machine's contention, so
// scaling it up by the base-machine ratio double-counts the noise and
// wrecks the prediction (observed on the cross-cluster property
// corpus under NIC contention).
func etScaleFor(meanET, pairDur vtime.Duration) float64 {
	if meanET <= 0 || pairDur <= 0 {
		return 1
	}
	s := float64(meanET) / float64(pairDur)
	if s >= 1-PairBiasGate {
		return 1
	}
	return s
}

// Validate checks table invariants: boundaries are per-process
// monotone within each row and weights are positive.
func (t *Table) Validate() error {
	if t.Procs <= 0 {
		return fmt.Errorf("phase table: no processes")
	}
	for _, r := range t.Rows {
		if r.Weight < 1 {
			return fmt.Errorf("phase table: phase %d weight %d", r.PhaseID, r.Weight)
		}
		if len(r.StartEvents) != t.Procs || len(r.EndEvents) != t.Procs {
			return fmt.Errorf("phase table: phase %d boundary width", r.PhaseID)
		}
		any := false
		for p := 0; p < t.Procs; p++ {
			if r.StartEvents[p] > r.EndEvents[p] {
				return fmt.Errorf("phase table: phase %d proc %d start %d > end %d",
					r.PhaseID, p, r.StartEvents[p], r.EndEvents[p])
			}
			if r.EndEvents[p] > r.StartEvents[p] {
				any = true
			}
		}
		if !any {
			return fmt.Errorf("phase table: phase %d spans no events", r.PhaseID)
		}
	}
	return nil
}

// Print renders the table in the spirit of the paper's Fig. 7 listing.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "PHASE_TABLE %s (%d processes, base AET %v)\n", t.AppName, t.Procs, t.BaseAET)
	fmt.Fprintf(w, "%-8s %-12s %-10s %-8s %s\n", "PhaseID", "PhaseET", "Weight", "Relevant", "Start->End (proc 0)")
	for _, r := range t.Rows {
		rel := ""
		if r.Relevant {
			rel = "yes"
		}
		fmt.Fprintf(w, "%-8d %-12v %-10d %-8s %d->%d\n",
			r.PhaseID, r.PhaseET, r.Weight, rel, r.StartEvents[0], r.EndEvents[0])
	}
}
