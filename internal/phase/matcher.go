// The matching engine behind savePhase. A window first tries the
// window-equality cache (iterative programs repeat windows verbatim);
// on a miss, candidates come from the fingerprint index, survivors of
// the counting bound are scored with the early-exit similarity test,
// and — when Config.ExtractParallel is set — the scoring fans out over
// a bounded worker pool. Results are bit-identical to the sequential
// scan in every mode: the winner is always the matching candidate with
// the lowest phase ID.
package phase

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// directScoreBucket is the bucket size up to which candidates are
// scored outright: the early-exit test over a handful of phases is
// cheaper than building the window profile the pruning bound needs.
const directScoreBucket = 4

// parallelMinCandidates is the surviving-candidate count below which
// goroutine hand-off costs more than it saves.
const parallelMinCandidates = 3

type matcher struct {
	cfg     Config
	idx     *phaseIndex
	workers int
	scratch []indexEntry
	// cellsOf, when set, resolves a candidate phase's behaviour matrix.
	// The out-of-core extraction keeps cold matrices in a spill store and
	// leaves Phase.Cells nil until the analysis is materialised, so every
	// scoring site routes through it. Must be safe for concurrent calls
	// (matchParallel workers score candidates concurrently).
	cellsOf func(*Phase) [][]Cell
	// cache holds, per tick length, the previous window and its
	// resolution.
	cache map[int]*bucketCache
	// winTab and winPP hold the current window's scratch profile —
	// hashed (process, signature) counts and per-process totals —
	// rebuilt in place when a window actually needs one: profiling is
	// lazy, because small buckets score faster directly.
	winTab      countTable
	winPP       []int32
	winProfiled bool

	// Extraction-wide tallies for the observability span: candidates
	// actually scored with the full similarity test, candidates
	// eliminated by the counting bound, and window-equality cache hits.
	// Updated only on the extraction goroutine.
	nScored, nPruned, nCacheHits int64
}

// bucketCache remembers the last window seen at a given tick length
// and the phase it resolved to. Iterative SPMD programs emit long runs
// of bit-identical windows, and an identical window provably resolves
// to the same phase: phases are immutable once recorded, candidates
// are scanned in ID order, and every phase recorded since the cached
// window carries a higher ID than the cached resolution — so the first
// match cannot change.
type bucketCache struct {
	cells  [][]Cell
	events int
	phase  *Phase
}

func newMatcher(cfg Config) *matcher {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := &matcher{cfg: cfg, idx: newPhaseIndex(), workers: w, cache: make(map[int]*bucketCache)}
	m.winTab.init(512)
	return m
}

// phaseCells resolves a phase's behaviour matrix for scoring: directly
// in-core, or through the spill store when the out-of-core extraction
// owns the matrices.
func (m *matcher) phaseCells(p *Phase) [][]Cell {
	if m.cellsOf != nil {
		return m.cellsOf(p)
	}
	return p.Cells
}

// profileWindow rebuilds the scratch profile from a freshly
// materialised window.
func (m *matcher) profileWindow(cells [][]Cell) {
	m.winProfiled = true
	m.winTab.reset()
	procs := 0
	if len(cells) > 0 {
		procs = len(cells[0])
	}
	if cap(m.winPP) < procs {
		m.winPP = make([]int32, procs)
	} else {
		m.winPP = m.winPP[:procs]
		clear(m.winPP)
	}
	for _, row := range cells {
		for pr := range row {
			if row[pr].Present {
				m.winPP[pr]++
				m.winTab.inc(sigKey(int32(pr), row[pr].Sig))
			}
		}
	}
}

// addCurrent records a freshly discovered phase under the profile of
// the window that created it, building it now if match skipped it.
func (m *matcher) addCurrent(p *Phase, cells [][]Cell) {
	if !m.winProfiled {
		m.profileWindow(cells)
	}
	prof := &sigProfile{
		events:  p.Events,
		perProc: append([]int32(nil), m.winPP...),
		entries: m.winTab.compact(),
	}
	m.idx.add(p, prof)
}

// cacheHit returns the cached resolution when the window is
// cell-for-cell identical to the previous window of its bucket.
func (m *matcher) cacheHit(cells [][]Cell, events int) *Phase {
	c := m.cache[len(cells)]
	if c == nil || c.events != events {
		return nil
	}
	for t := range cells {
		ca, cb := c.cells[t], cells[t]
		for pr := range cb {
			if ca[pr] != cb[pr] {
				return nil
			}
		}
	}
	m.nCacheHits++
	return c.phase
}

// setCache records the window just resolved as its bucket's
// comparison point.
func (m *matcher) setCache(cells [][]Cell, events int, p *Phase) {
	if c := m.cache[len(cells)]; c != nil {
		c.cells, c.events, c.phase = cells, events, p
		return
	}
	m.cache[len(cells)] = &bucketCache{cells: cells, events: events, phase: p}
}

// match returns the first phase, in discovery (ID) order, that the
// window folds into under the §3.3 similarity relation, or nil.
// Small buckets are scored directly; larger ones are pruned with the
// counting bound over a window profile built on demand.
func (m *matcher) match(cells [][]Cell, events int) *Phase {
	m.winProfiled = false
	cands := m.idx.candidates(len(cells))
	if len(cands) == 0 {
		return nil
	}
	if len(cands) <= directScoreBucket {
		for _, c := range cands {
			m.nScored++
			if similarCells(m.phaseCells(c.phase), cells, c.phase.Events, events, m.cfg) {
				return c.phase
			}
		}
		return nil
	}
	m.profileWindow(cells)
	live := m.scratch[:0]
	for _, c := range cands {
		if m.couldMatch(c.prof, len(cells), events) {
			live = append(live, c)
		}
	}
	m.scratch = live
	m.nPruned += int64(len(cands) - len(live))
	if len(live) == 0 {
		return nil
	}
	if !m.cfg.ExtractParallel || m.workers == 1 || len(live) < parallelMinCandidates {
		for _, c := range live {
			m.nScored++
			if similarCells(m.phaseCells(c.phase), cells, c.phase.Events, events, m.cfg) {
				return c.phase
			}
		}
		return nil
	}
	return m.matchParallel(live, cells, events)
}

// matchParallel scores the surviving candidates concurrently. Workers
// pull indices from a shared counter and record matches in `best`, a
// monotonically decreasing minimum, so the returned phase is exactly
// the one the sequential scan would have picked; candidates past the
// current best are skipped because they can no longer influence it.
func (m *matcher) matchParallel(live []indexEntry, cells [][]Cell, events int) *Phase {
	var next, best, scored atomic.Int64
	n := int64(len(live))
	best.Store(n)
	workers := m.workers
	if int64(workers) > n {
		workers = int(n)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= n || i >= best.Load() {
					return
				}
				c := live[i]
				scored.Add(1)
				if similarCells(m.phaseCells(c.phase), cells, c.phase.Events, events, m.cfg) {
					for {
						b := best.Load()
						if i >= b || best.CompareAndSwap(b, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	m.nScored += scored.Load()
	if b := best.Load(); b < n {
		return live[b].phase
	}
	return nil
}
