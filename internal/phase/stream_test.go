package phase

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// streamBudgets are the two memory policies every equivalence test
// runs under: unlimited (no spill store at all) and 1 byte, which
// forces every representative matrix through the spill file on every
// eviction round — the maximally adversarial out-of-core schedule.
var streamBudgets = map[string]int64{"in-core": 0, "forced-spill": 1}

// streamExtractFor runs the full streaming pipeline over an in-memory
// trace and returns the result with cells materialised.
func streamExtractFor(t *testing.T, tr *trace.Trace, warm int, cfg Config, budget int64) *StreamResult {
	t.Helper()
	r, err := logical.StreamOrder(logical.SourceFromTrace(tr))
	if err != nil {
		t.Fatalf("stream order: %v", err)
	}
	scfg := StreamConfig{Config: cfg, MemBudgetBytes: budget}
	if budget > 0 {
		scfg.SpillDir = t.TempDir()
	}
	res, err := ExtractStreamTable(context.Background(), r, r.Meta(), warm, scfg)
	if err != nil {
		t.Fatalf("stream extract: %v", err)
	}
	t.Cleanup(func() { res.Close() })
	if err := res.MaterializeCells(); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return res
}

// assertStreamMatchesInCore is the PR's core phase-stage property: the
// streaming extraction must reproduce Extract's analysis and
// BuildTable's table bit for bit, whether or not matrices spill.
func assertStreamMatchesInCore(t *testing.T, label string, tr *trace.Trace, warm int) {
	t.Helper()
	l, err := logical.Order(tr)
	if err != nil {
		t.Fatalf("%s: order: %v", label, err)
	}
	cfg := DefaultConfig()
	ref, err := Extract(l, cfg)
	if err != nil {
		t.Fatalf("%s: in-core extract: %v", label, err)
	}
	refTB, err := ref.BuildTable(warm)
	if err != nil {
		t.Fatalf("%s: in-core table: %v", label, err)
	}
	for mode, budget := range streamBudgets {
		res := streamExtractFor(t, tr, warm, cfg, budget)
		assertAnalysesEqual(t, label+"/"+mode, ref, res.Analysis)
		if !reflect.DeepEqual(refTB.Rows, res.Table.Rows) {
			for i := range refTB.Rows {
				if i < len(res.Table.Rows) && !reflect.DeepEqual(refTB.Rows[i], res.Table.Rows[i]) {
					t.Fatalf("%s/%s: table row %d diverges:\n got %+v\nwant %+v",
						label, mode, i, res.Table.Rows[i], refTB.Rows[i])
				}
			}
			t.Fatalf("%s/%s: tables diverge (%d rows vs %d)", label, mode, len(res.Table.Rows), len(refTB.Rows))
		}
		if res.Table.AppName != refTB.AppName || res.Table.Procs != refTB.Procs ||
			res.Table.BaseAET != refTB.BaseAET || res.Table.TotalPhases != refTB.TotalPhases {
			t.Fatalf("%s/%s: table header diverges: %+v vs %+v", label, mode, res.Table, refTB)
		}
		if err := res.Table.Validate(); err != nil {
			t.Fatalf("%s/%s: streamed table invalid: %v", label, mode, err)
		}
		if budget > 0 && len(ref.Phases) > 1 && res.Stats.SpilledPhases == 0 {
			t.Fatalf("%s/%s: 1-byte budget spilled nothing across %d phases", label, mode, len(ref.Phases))
		}
	}
}

// TestStreamExtractGoldenApps proves streaming phase extraction is bit
// identical to Analyze's in-core path on every registered application
// workload, with and without spilling.
func TestStreamExtractGoldenApps(t *testing.T) {
	workloads := map[string]string{
		"bt": "classA", "sp": "classA", "cg": "classA", "ft": "classA",
		"lu": "classA", "ep": "classA", "is": "classA",
		"gromacs":      "d.villin",
		"masterworker": "rounds5",
		"moldy":        "tip4p-short",
		"pop":          "synthetic60",
		"smg2000":      "-n 120 solver 3",
		"sweep3d":      "sweep.150",
	}
	d, err := machine.NewDeployment(machine.ClusterA(), 16, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range apps.Names() {
		wl, ok := workloads[name]
		if !ok {
			t.Errorf("app %q has no golden workload registered; add it", name)
			continue
		}
		name, wl := name, wl
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app, err := apps.Make(name, 16, wl)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			assertStreamMatchesInCore(t, name, res.Trace, 2)
		})
	}
}

// TestStreamExtractRandomTraces fuzzes the property across random SPMD
// programs and warm-occurrence indices (0 exercises the no-advance
// designation, 50 exceeds most weights and exercises the clamp).
func TestStreamExtractRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tr := genTrace(t, seed, 8)
			for _, warm := range []int{0, 2, 50} {
				assertStreamMatchesInCore(t, fmt.Sprintf("warm%d", warm), tr, warm)
			}
		})
	}
}

// TestStreamExtractBoundaryShapes pins the window-boundary edge cases:
// a single-tick trace, a trace that is one phase with no repeats (the
// whole run is the trailing close), occurrences spanning the
// assignment-chunk boundary of the logical merge, and a single-block
// tracefile read end to end through the real on-disk path.
func TestStreamExtractBoundaryShapes(t *testing.T) {
	d, err := machine.NewDeployment(machine.ClusterA(), 4, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	runApp := func(name string, procs int, body func(c *mpi.Comm)) *trace.Trace {
		t.Helper()
		dep := d
		if procs != 4 {
			dep, err = machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := mpi.Run(mpi.App{Name: name, Procs: procs, Body: body}, mpi.RunConfig{Deployment: dep, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}

	// One collective: a single tick, handled entirely by the trailing
	// close — the smallest possible analysis.
	oneTick := runApp("one-tick", 4, func(c *mpi.Comm) { c.Barrier() })
	assertStreamMatchesInCore(t, "single-tick", oneTick, 2)

	// No communication signature ever repeats per process: the run is
	// one phase whose only occurrence is the trailing window — the
	// "window smaller than one phase occurrence" shape, since no
	// interior boundary ever forms.
	noRepeat := runApp("no-repeat", 4, func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 6; i++ {
			c.Compute(1e3)
			// Distinct tag each round => distinct signatures, no repeat.
			c.SendrecvN((c.Rank()+1)%n, i, 64*(i+1), (c.Rank()+n-1)%n, i)
		}
		c.Barrier()
	})
	assertStreamMatchesInCore(t, "no-repeat", noRepeat, 2)

	// A long iterative run whose phase occurrences straddle the
	// logical streamer's assignment-chunk boundaries many times over.
	longRun := runApp("long-run", 4, func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 300; i++ {
			c.Compute(2e3)
			c.SendrecvN((c.Rank()+1)%n, 0, 256, (c.Rank()+n-1)%n, 0)
			if i%7 == 6 {
				c.Allreduce([]float64{1}, mpi.Sum)
			}
		}
	})
	assertStreamMatchesInCore(t, "chunk-straddle", longRun, 2)

	// Single-block tracefile (< 512 events), through the real encoded
	// path: BlockReader -> RankStreams -> StreamOrder -> stream extract.
	small := runApp("single-block", 2, func(c *mpi.Comm) {
		for i := 0; i < 5; i++ {
			c.Compute(1e3)
			c.Barrier()
		}
	})
	if len(small.Events) >= 512 {
		t.Fatalf("single-block shape grew to %d events; shrink it", len(small.Events))
	}
	l, err := logical.Order(small)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Extract(l, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := encodeToRankStreams(t, small)
	tick, err := logical.StreamOrder(rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractStreamTable(context.Background(), tick, tick.Meta(), 2, StreamConfig{Config: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysesEqual(t, "single-block/file", ref, res.Analysis)
}

// encodeToRankStreams round-trips a trace through the v2 codec and
// opens per-rank streams over the encoded bytes.
func encodeToRankStreams(t *testing.T, tr *trace.Trace) *trace.RankStreams {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	br, err := trace.NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestStreamExtractContextCancel: a cancelled context aborts the
// extraction promptly with the context's error.
func TestStreamExtractContextCancel(t *testing.T) {
	tr := genTrace(t, 3, 8)
	r, err := logical.StreamOrder(logical.SourceFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtractStreamTable(ctx, r, r.Meta(), 2, StreamConfig{Config: DefaultConfig()}); err != context.Canceled {
		t.Fatalf("cancelled extraction returned %v, want context.Canceled", err)
	}
}

// TestSpillCodecRoundTrip pins the spill file format: encode/decode is
// lossless and every corruption is caught by shape or checksum checks.
func TestSpillCodecRoundTrip(t *testing.T) {
	cells := zeroCells(3, 2)
	cells[0][1] = Cell{Present: true, Sig: 0xdeadbeefcafe, Size: 4096, Compute: vtime.Duration(12345)}
	cells[2][0] = Cell{Present: true, Sig: 7, Size: 1, Compute: 1}
	data := encodeSpill(cells)
	got, err := decodeSpill(data, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, got) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, cells)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x10
		if _, err := decodeSpill(bad, 1, 3, 2); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := decodeSpill(data[:len(data)-1], 1, 3, 2); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated spill error = %v, want size complaint", err)
	}
	if _, err := decodeSpill(data, 1, 4, 2); err == nil {
		t.Fatal("wrong shape went undetected")
	}
}

// TestStreamSpillEngages: under a budget far below the matrices'
// footprint the store actually spills and reloads, files appear under
// the spill dir during the run, and Close removes them.
func TestStreamSpillEngages(t *testing.T) {
	tr := genTrace(t, 1, 8)
	r, err := logical.StreamOrder(logical.SourceFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/spill"
	res, err := ExtractStreamTable(context.Background(), r, r.Meta(), 2,
		StreamConfig{Config: DefaultConfig(), MemBudgetBytes: 1, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analysis.Phases) > 1 {
		if res.Stats.SpilledPhases == 0 {
			t.Fatal("budget 1 spilled no phases")
		}
		if res.Stats.SpillBytes == 0 {
			t.Fatal("spilled phases wrote no bytes")
		}
	}
	if err := res.MaterializeCells(); err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Analysis.Phases {
		if p.Cells == nil || len(p.Cells) != p.TickLen {
			t.Fatalf("phase %d cells not materialised", p.ID)
		}
	}
	if err := res.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
