package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// SaveCluster writes a cluster model as JSON, so users can derive
// custom machines from the presets and load them into the CLI.
func SaveCluster(w io.Writer, c *Cluster) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c)
}

// LoadCluster reads a JSON cluster model and validates it.
func LoadCluster(r io.Reader) (*Cluster, error) {
	var c Cluster
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("machine: decoding cluster: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
