package machine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestPresetCoreCounts(t *testing.T) {
	// Table 2 core counts: A=128, B=64, C=256, D=176 (paper says 169
	// usable; we model full nodes).
	if got := ClusterA().Cores(); got != 128 {
		t.Errorf("cluster A cores = %d, want 128", got)
	}
	if got := ClusterB().Cores(); got != 64 {
		t.Errorf("cluster B cores = %d, want 64", got)
	}
	if got := ClusterC().Cores(); got != 256 {
		t.Errorf("cluster C cores = %d, want 256", got)
	}
	if ClusterD().Cores() < 169 {
		t.Errorf("cluster D cores = %d, want >= 169", ClusterD().Cores())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "b", "Cluster C", "d"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("Z") != nil {
		t.Error("ByName(Z) should be nil")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []func(*Cluster){
		func(c *Cluster) { c.Nodes = 0 },
		func(c *Cluster) { c.CoresPerNode = -1 },
		func(c *Cluster) { c.CoreGFLOPS = 0 },
		func(c *Cluster) { c.MemContention = -0.1 },
		func(c *Cluster) { c.Interconnect.Bandwidth = 0 },
		func(c *Cluster) { c.IntraNode.Latency = -1 },
	}
	for i, mutate := range cases {
		c := ClusterA()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewDeploymentRejectsBadRanks(t *testing.T) {
	if _, err := NewDeployment(ClusterA(), 0, MapBlock); err == nil {
		t.Error("0 ranks should be rejected")
	}
	if _, err := NewDeployment(ClusterA(), -4, MapBlock); err == nil {
		t.Error("negative ranks should be rejected")
	}
}

func TestBlockMappingPacksNodes(t *testing.T) {
	d, err := NewDeployment(ClusterB(), 16, MapBlock) // 8 cores/node
	if err != nil {
		t.Fatal(err)
	}
	if !d.SameNode(0, 7) {
		t.Error("ranks 0 and 7 should share node 0 under block mapping")
	}
	if d.SameNode(7, 8) {
		t.Error("ranks 7 and 8 should be on different nodes under block mapping")
	}
}

func TestCyclicMappingSpreadsNodes(t *testing.T) {
	d, err := NewDeployment(ClusterB(), 16, MapCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if d.SameNode(0, 1) {
		t.Error("ranks 0 and 1 should be on different nodes under cyclic mapping")
	}
	if !d.SameNode(0, 8) {
		t.Error("ranks 0 and 8 should wrap onto the same node under cyclic mapping")
	}
}

func TestOversubscription(t *testing.T) {
	// Table 7 scenario: 256 ranks on cluster A's 128 cores.
	d, err := NewDeployment(ClusterA(), 256, MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Oversubscription(); got != 2 {
		t.Errorf("oversubscription = %d, want 2", got)
	}
	// Compute must be at least 2x slower than on a non-shared core.
	d1, _ := NewDeployment(ClusterA(), 128, MapBlock)
	t256 := d.ComputeTime(0, 1e6)
	t128 := d1.ComputeTime(0, 1e6)
	if t256 < 2*t128 {
		t.Errorf("oversubscribed compute %v should be >= 2x dedicated %v", t256, t128)
	}
}

func TestComputeTimeScalesWithRate(t *testing.T) {
	da, _ := NewDeployment(ClusterA(), 1, MapBlock)
	db, _ := NewDeployment(ClusterB(), 1, MapBlock)
	// Cluster B cores are faster: same work, less time.
	if db.ComputeTime(0, 1e9) >= da.ComputeTime(0, 1e9) {
		t.Error("cluster B should compute faster than cluster A")
	}
	if da.ComputeTime(0, 0) != 0 || da.ComputeTime(0, -10) != 0 {
		t.Error("non-positive work should take zero time")
	}
}

func TestMemContentionSlowsSharedNodes(t *testing.T) {
	full, _ := NewDeployment(ClusterC(), 16, MapBlock) // fills one 16-core node
	solo, _ := NewDeployment(ClusterC(), 1, MapBlock)
	if full.ComputeTime(0, 1e6) <= solo.ComputeTime(0, 1e6) {
		t.Error("a fully loaded node should compute slower per rank")
	}
}

func TestPathSelection(t *testing.T) {
	d, _ := NewDeployment(ClusterA(), 4, MapBlock) // 2 cores/node
	intra := d.Path(0, 1)
	inter := d.Path(0, 2)
	if intra.Latency >= inter.Latency {
		t.Error("intra-node latency should be below inter-node latency")
	}
	if got := d.Path(3, 3); got.Latency != intra.Latency {
		t.Error("self messages should use the intra-node path")
	}
}

func TestCollectivePath(t *testing.T) {
	d, _ := NewDeployment(ClusterA(), 4, MapBlock)
	if d.CollectivePath([]int{0, 1}).Latency != d.Cluster.IntraNode.Latency {
		t.Error("same-node collective should use intra-node path")
	}
	if d.CollectivePath([]int{0, 1, 2}).Latency != d.Cluster.Interconnect.Latency {
		t.Error("cross-node collective should use the interconnect")
	}
	if !d.CollectivePath(nil).Valid() {
		t.Error("empty member list should still return a valid path")
	}
}

func TestMinLatency(t *testing.T) {
	d, _ := NewDeployment(ClusterA(), 2, MapBlock)
	if d.MinLatency() != d.Cluster.IntraNode.Latency {
		t.Error("min latency should be the intra-node latency")
	}
}

func TestDeploymentString(t *testing.T) {
	d, _ := NewDeployment(ClusterA(), 256, MapBlock)
	s := d.String()
	for _, want := range []string{"Cluster A", "256 ranks", "block", "2x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if MapCyclic.String() != "cyclic" || MappingPolicy(9).String() != "mapping(?)" {
		t.Error("MappingPolicy.String wrong")
	}
}

// Property: every rank gets a placement within topology bounds, under
// both policies, for any rank count.
func TestQuickPlacementBounds(t *testing.T) {
	err := quick.Check(func(ranks uint8, cyclic bool) bool {
		n := int(ranks)%512 + 1
		policy := MapBlock
		if cyclic {
			policy = MapCyclic
		}
		d, err := NewDeployment(ClusterC(), n, policy)
		if err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			p := d.Place(r)
			if p.Node < 0 || p.Node >= d.Cluster.Nodes ||
				p.Core < 0 || p.Core >= d.Cluster.CoresPerNode {
				return false
			}
			if d.ComputeTime(r, 1000) <= 0 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestClusterJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := ClusterC()
	if err := SaveCluster(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCluster(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestLoadClusterRejectsInvalid(t *testing.T) {
	if _, err := LoadCluster(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadCluster(strings.NewReader(`{"Name":"x","Nodes":0}`)); err == nil {
		t.Error("invalid model should fail validation")
	}
	bad := ClusterA()
	bad.CoreGFLOPS = -1
	var buf bytes.Buffer
	if err := SaveCluster(&buf, bad); err == nil {
		t.Error("saving an invalid model should fail")
	}
}

func TestTopologyValidation(t *testing.T) {
	good := Topology{Kind: TopoFatTree, Radix: 8, HopLatency: 200, HopBandwidthTaper: 0.7}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Topology{
		{Kind: TopoFatTree, Radix: 1, HopBandwidthTaper: 1},
		{Kind: TopoFatTree, Radix: 8, HopLatency: -1, HopBandwidthTaper: 1},
		{Kind: TopoTorus2D, HopBandwidthTaper: 0},
		{Kind: TopoTorus2D, HopBandwidthTaper: 1.5},
		{Kind: TopologyKind(9), HopBandwidthTaper: 1},
	}
	for i, tc := range cases {
		if err := tc.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, tc)
		}
	}
	if TopoFatTree.String() != "fat-tree" || TopoFlat.String() != "flat" ||
		TopoTorus2D.String() != "torus2d" || TopologyKind(9).String() != "topology(?)" {
		t.Error("topology names wrong")
	}
}

func TestFatTreeHops(t *testing.T) {
	topo := Topology{Kind: TopoFatTree, Radix: 4, HopLatency: 500, HopBandwidthTaper: 0.5}
	// Radix 4: 2 nodes per edge switch, 4 per pod.
	if h := topo.Hops(0, 0, 16); h != 0 {
		t.Errorf("self hops = %d", h)
	}
	if h := topo.Hops(0, 1, 16); h != 1 {
		t.Errorf("same-edge hops = %d, want 1", h)
	}
	if h := topo.Hops(0, 2, 16); h != 3 {
		t.Errorf("same-pod hops = %d, want 3", h)
	}
	if h := topo.Hops(0, 8, 16); h != 5 {
		t.Errorf("cross-pod hops = %d, want 5", h)
	}
}

func TestTorusHops(t *testing.T) {
	topo := Topology{Kind: TopoTorus2D, HopBandwidthTaper: 1}
	// 16 nodes = 4x4 torus.
	if h := topo.Hops(0, 1, 16); h != 1 {
		t.Errorf("neighbour hops = %d", h)
	}
	if h := topo.Hops(0, 3, 16); h != 1 {
		t.Errorf("wraparound hops = %d, want 1", h)
	}
	if h := topo.Hops(0, 10, 16); h != 4 {
		t.Errorf("diagonal hops = %d, want 4 (2+2)", h)
	}
}

func TestTopologyAffectsPath(t *testing.T) {
	c := ClusterC()
	c.Topology = Topology{Kind: TopoFatTree, Radix: 4, HopLatency: 2 * 1000, HopBandwidthTaper: 0.6}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(c, c.Cores(), MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	near := d.Path(0, 16)  // nodes 0 and 1: same edge switch
	far := d.Path(0, 8*16) // node 8: different pod (radix 4 -> pods of 4)
	if far.Latency <= near.Latency {
		t.Errorf("cross-pod latency %v should exceed same-edge %v", far.Latency, near.Latency)
	}
	if far.Bandwidth >= near.Bandwidth {
		t.Errorf("cross-pod bandwidth %v should taper below %v", far.Bandwidth, near.Bandwidth)
	}
	// Intra-node stays untouched.
	if d.Path(0, 1).Latency != c.IntraNode.Latency {
		t.Error("intra-node path must not be affected by topology")
	}
}

func TestTopologyChangesAppTiming(t *testing.T) {
	// The same cross-node exchange must slow down on a tapered fat
	// tree versus the flat fabric.
	flat := ClusterC()
	tree := ClusterC()
	tree.Topology = Topology{Kind: TopoFatTree, Radix: 4, HopLatency: 20 * 1000, HopBandwidthTaper: 0.5}
	dFlat, _ := NewDeployment(flat, 64, MapCyclic)
	dTree, _ := NewDeployment(tree, 64, MapCyclic)
	// Under cyclic mapping ranks 0 and 8 land on nodes 0 and 8 —
	// different pods in a radix-4 tree.
	if dTree.Path(0, 8).Latency <= dFlat.Path(0, 8).Latency {
		t.Error("tree path should be slower for distant nodes")
	}
}
