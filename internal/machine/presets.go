package machine

import (
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// networkParams abbreviates network.Params in the preset tables.
type networkParams = network.Params

// The preset clusters reproduce Table 2 of the paper. Absolute compute
// rates and network constants are order-of-magnitude models of the
// hardware named there (Xeon 5150 / E5430 / E7350, Itanium Montvale;
// Gigabit Ethernet vs ConnectX InfiniBand); the cross-cluster *ratios*
// are what the prediction experiments exercise.

// GigabitEthernet returns inter-node parameters for a GigE fabric.
func GigabitEthernet() networkParams {
	return networkParams{
		Latency:            50 * vtime.Microsecond,
		Bandwidth:          118e6, // ~118 MB/s sustained
		SendOverhead:       3 * vtime.Microsecond,
		RecvOverhead:       3 * vtime.Microsecond,
		InjectionBandwidth: 600e6,
		EagerLimit:         64 << 10,
	}
}

// InfiniBand returns inter-node parameters for a ConnectX IB fabric.
func InfiniBand() networkParams {
	return networkParams{
		Latency:            2 * vtime.Microsecond,
		Bandwidth:          1.2e9,
		SendOverhead:       600 * vtime.Nanosecond,
		RecvOverhead:       600 * vtime.Nanosecond,
		InjectionBandwidth: 4e9,
		EagerLimit:         16 << 10,
	}
}

// SharedMemory returns intra-node parameters (memory-copy transport).
func SharedMemory() networkParams {
	return networkParams{
		Latency:            500 * vtime.Nanosecond,
		Bandwidth:          3e9,
		SendOverhead:       200 * vtime.Nanosecond,
		RecvOverhead:       200 * vtime.Nanosecond,
		InjectionBandwidth: 6e9,
		EagerLimit:         256 << 10,
	}
}

// ClusterA models Table 2's cluster A: 64 nodes of dual-core Intel
// Xeon 5150 (2.66 GHz, 4 MB L2), Gigabit Ethernet — 128 cores.
func ClusterA() *Cluster {
	return &Cluster{
		Name:          "Cluster A",
		ISA:           "x86_64",
		Nodes:         64,
		CoresPerNode:  2,
		CoreGFLOPS:    2.1,
		MemContention: 0.12,
		Interconnect:  GigabitEthernet(),
		IntraNode:     SharedMemory(),
	}
}

// ClusterB models cluster B: 8 nodes of 2x quad-core Xeon E5430
// (2.66 GHz, 2x6 MB L2), Gigabit Ethernet — 64 cores. Newer cores with
// larger caches run slightly faster per core than cluster A.
func ClusterB() *Cluster {
	return &Cluster{
		Name:          "Cluster B",
		ISA:           "x86_64",
		Nodes:         8,
		CoresPerNode:  8,
		CoreGFLOPS:    2.6,
		MemContention: 0.04,
		Interconnect:  GigabitEthernet(),
		IntraNode:     SharedMemory(),
	}
}

// ClusterC models cluster C: 16 nodes of 4x quad-core Xeon E7350
// (2.66 GHz), ConnectX InfiniBand — 256 cores.
func ClusterC() *Cluster {
	return &Cluster{
		Name:          "Cluster C",
		ISA:           "x86_64",
		Nodes:         16,
		CoresPerNode:  16,
		CoreGFLOPS:    3.0,
		MemContention: 0.02,
		Interconnect:  InfiniBand(),
		IntraNode:     SharedMemory(),
	}
}

// ClusterD models cluster D: an Itanium Montvale SMP NUMA machine with
// InfiniBand 4x DDR. Its ISA differs from clusters A-C, so signatures
// built there cannot be ported (§7 / Appendix E); PAS2P must rebuild
// the signature from the phase table instead.
func ClusterD() *Cluster {
	return &Cluster{
		Name:          "Cluster D",
		ISA:           "ia64",
		Nodes:         11,
		CoresPerNode:  16,
		CoreGFLOPS:    1.6,
		MemContention: 0.03,
		Interconnect:  InfiniBand(),
		IntraNode:     SharedMemory(),
	}
}

// ByName returns a preset cluster by its short name ("A".."D") or full
// name ("Cluster A"); it returns nil for unknown names.
func ByName(name string) *Cluster {
	switch name {
	case "A", "a", "Cluster A":
		return ClusterA()
	case "B", "b", "Cluster B":
		return ClusterB()
	case "C", "c", "Cluster C":
		return ClusterC()
	case "D", "d", "Cluster D":
		return ClusterD()
	}
	return nil
}

// Presets lists all modelled clusters in Table 2 order.
func Presets() []*Cluster {
	return []*Cluster{ClusterA(), ClusterB(), ClusterC(), ClusterD()}
}
