package machine

import (
	"fmt"
	"math"

	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// TopologyKind selects how inter-node distance translates into path
// parameters. The paper's clusters are small enough that a flat fabric
// is adequate (and remains the default); larger modelled machines can
// enable a topology so that rank placement changes communication cost,
// which mapping-policy experiments then expose.
type TopologyKind int

const (
	// TopoFlat is the default: every inter-node pair uses the
	// interconnect parameters unchanged.
	TopoFlat TopologyKind = iota
	// TopoFatTree models a k-ary fat tree with Radix-port switches:
	// nodes in the same edge group pay one switch hop, nodes under the
	// same aggregation pod pay three, anything else five.
	TopoFatTree
	// TopoTorus2D models a 2-D torus of nodes: the hop count is the
	// Manhattan distance with wraparound.
	TopoTorus2D
)

func (k TopologyKind) String() string {
	switch k {
	case TopoFlat:
		return "flat"
	case TopoFatTree:
		return "fat-tree"
	case TopoTorus2D:
		return "torus2d"
	default:
		return "topology(?)"
	}
}

// Topology parameterises the distance model.
type Topology struct {
	Kind TopologyKind
	// Radix is the fat tree's switch port count (nodes per edge
	// switch = Radix/2); ignored by other kinds.
	Radix int
	// HopLatency is the extra latency added per switch/router hop
	// beyond the first.
	HopLatency vtime.Duration
	// HopBandwidthTaper multiplies available bandwidth per extra hop
	// (1 = full bisection; < 1 models oversubscribed uplinks).
	HopBandwidthTaper float64
}

// Validate checks the topology parameters.
func (t *Topology) Validate() error {
	switch t.Kind {
	case TopoFlat:
		return nil
	case TopoFatTree:
		if t.Radix < 2 {
			return fmt.Errorf("machine: fat tree needs radix >= 2, got %d", t.Radix)
		}
	case TopoTorus2D:
	default:
		return fmt.Errorf("machine: unknown topology kind %d", t.Kind)
	}
	if t.HopLatency < 0 {
		return fmt.Errorf("machine: negative hop latency")
	}
	if t.HopBandwidthTaper <= 0 || t.HopBandwidthTaper > 1 {
		return fmt.Errorf("machine: bandwidth taper %v out of (0,1]", t.HopBandwidthTaper)
	}
	return nil
}

// Hops returns the switch/router hop count between two nodes.
func (t *Topology) Hops(a, b, nodes int) int {
	if a == b {
		return 0
	}
	switch t.Kind {
	case TopoFatTree:
		perEdge := t.Radix / 2
		if perEdge < 1 {
			perEdge = 1
		}
		if a/perEdge == b/perEdge {
			return 1 // same edge switch
		}
		perPod := perEdge * (t.Radix / 2)
		if perPod < 1 {
			perPod = 1
		}
		if a/perPod == b/perPod {
			return 3 // up to aggregation and back down
		}
		return 5 // through the core
	case TopoTorus2D:
		side := int(math.Sqrt(float64(nodes)))
		if side < 1 {
			side = 1
		}
		ax, ay := a%side, a/side
		bx, by := b%side, b/side
		dx := absInt(ax - bx)
		if side-dx < dx {
			dx = side - dx
		}
		dy := absInt(ay - by)
		if side-dy < dy {
			dy = side - dy
		}
		h := dx + dy
		if h < 1 {
			h = 1
		}
		return h
	default:
		return 1
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pathAcross derives the parameters of an inter-node path across the
// topology: the base interconnect plus per-hop latency, with bandwidth
// tapered per extra hop.
func (t *Topology) pathAcross(base network.Params, hops int) network.Params {
	if hops <= 1 || t.Kind == TopoFlat {
		return base
	}
	p := base
	p.Latency += vtime.Duration(hops-1) * t.HopLatency
	taper := math.Pow(t.HopBandwidthTaper, float64(hops-1))
	p.Bandwidth *= taper
	return p
}
