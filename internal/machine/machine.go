// Package machine models target parallel machines: node topology,
// per-core compute rates, memory contention, interconnect parameters
// and process-to-core mapping policies. A Deployment (a Cluster plus a
// mapping of ranks onto cores) supplies the simulation engine with the
// two quantities it needs: how long a block of computation takes on a
// given rank, and which network path class connects two ranks.
package machine

import (
	"fmt"
	"math"

	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// Cluster describes one target machine, mirroring the rows of the
// paper's Table 2.
type Cluster struct {
	// Name labels the machine in reports ("Cluster A", ...).
	Name string
	// ISA is the instruction-set architecture. Signatures built on one
	// ISA cannot be ported to a machine with a different ISA (§7 of
	// the paper); the signature layer enforces this.
	ISA string
	// Nodes and CoresPerNode define the topology.
	Nodes        int
	CoresPerNode int
	// CoreGFLOPS is the sustained per-core compute rate used to turn
	// declared work (flop counts) into virtual time.
	CoreGFLOPS float64
	// MemContention is the fractional slowdown added per additional
	// active rank on the same node (crude shared memory-bus model):
	// a compute block runs at CoreGFLOPS/(1+MemContention·(k-1)) with
	// k active ranks per node.
	MemContention float64
	// Interconnect is the inter-node path; IntraNode the shared-memory
	// path between ranks on the same node.
	Interconnect network.Params
	IntraNode    network.Params
	// Topology optionally makes inter-node paths distance-dependent
	// (fat tree or torus); the zero value is a flat fabric.
	Topology Topology
}

// Cores returns the total core count of the cluster.
func (c *Cluster) Cores() int { return c.Nodes * c.CoresPerNode }

// Validate reports a descriptive error for nonsensical cluster models.
func (c *Cluster) Validate() error {
	switch {
	case c.Nodes <= 0 || c.CoresPerNode <= 0:
		return fmt.Errorf("machine %q: topology %d nodes x %d cores invalid", c.Name, c.Nodes, c.CoresPerNode)
	case c.CoreGFLOPS <= 0:
		return fmt.Errorf("machine %q: CoreGFLOPS must be positive", c.Name)
	case c.MemContention < 0:
		return fmt.Errorf("machine %q: MemContention must be non-negative", c.Name)
	case !c.Interconnect.Valid():
		return fmt.Errorf("machine %q: invalid interconnect parameters", c.Name)
	case !c.IntraNode.Valid():
		return fmt.Errorf("machine %q: invalid intra-node parameters", c.Name)
	}
	if c.Topology.Kind != TopoFlat {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MappingPolicy selects how ranks are laid out over nodes and cores.
type MappingPolicy int

const (
	// MapBlock fills each node's cores before moving to the next node
	// (consecutive ranks share nodes). This is the default policy.
	MapBlock MappingPolicy = iota
	// MapCyclic deals ranks round-robin across nodes (consecutive
	// ranks land on different nodes).
	MapCyclic
)

func (m MappingPolicy) String() string {
	switch m {
	case MapBlock:
		return "block"
	case MapCyclic:
		return "cyclic"
	default:
		return "mapping(?)"
	}
}

// Placement locates one rank on the machine.
type Placement struct {
	Node int
	Core int // core index within the node
}

// Deployment binds a number of ranks to a cluster under a mapping
// policy. When Ranks exceeds the core count, ranks are oversubscribed
// onto cores (e.g. the paper's Table 7 runs 256 processes on the
// 128-core cluster A with two processes per core) and compute is
// slowed by the per-core share.
type Deployment struct {
	Cluster *Cluster
	Ranks   int
	Policy  MappingPolicy

	place     []Placement
	perCore   []int     // ranks sharing each (node,core), indexed per rank
	perNode   []int     // active ranks on the node of each rank
	computeNS []float64 // per-rank virtual ns per flop, precomputed
}

// NewDeployment validates and lays out ranks on the cluster.
func NewDeployment(c *Cluster, ranks int, policy MappingPolicy) (*Deployment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("deployment on %q: rank count %d invalid", c.Name, ranks)
	}
	d := &Deployment{Cluster: c, Ranks: ranks, Policy: policy}
	d.layout()
	return d, nil
}

func (d *Deployment) layout() {
	c := d.Cluster
	cores := c.Cores()
	d.place = make([]Placement, d.Ranks)
	coreLoad := make([]int, cores) // ranks per global core slot
	nodeLoad := make([]int, c.Nodes)
	for r := 0; r < d.Ranks; r++ {
		var slot int // global core index
		switch d.Policy {
		case MapCyclic:
			// Deal across nodes first, then across cores, wrapping
			// for oversubscription.
			round := r / cores
			pos := r % cores
			node := pos % c.Nodes
			core := pos / c.Nodes
			slot = node*c.CoresPerNode + core
			_ = round
		default: // MapBlock
			slot = r % cores
		}
		node := slot / c.CoresPerNode
		d.place[r] = Placement{Node: node, Core: slot % c.CoresPerNode}
		coreLoad[slot]++
		nodeLoad[node]++
	}
	d.perCore = make([]int, d.Ranks)
	d.perNode = make([]int, d.Ranks)
	d.computeNS = make([]float64, d.Ranks)
	for r := 0; r < d.Ranks; r++ {
		p := d.place[r]
		slot := p.Node*c.CoresPerNode + p.Core
		d.perCore[r] = coreLoad[slot]
		d.perNode[r] = nodeLoad[p.Node]
		// Effective rate: per-core rate divided by core sharing and by
		// the memory-contention factor of co-resident active ranks.
		active := nodeLoad[p.Node]
		if active > c.CoresPerNode {
			active = c.CoresPerNode // a core runs one rank at a time
		}
		rate := c.CoreGFLOPS * 1e9 / float64(d.perCore[r]) /
			(1 + c.MemContention*float64(active-1))
		d.computeNS[r] = 1e9 / rate // ns per flop
	}
}

// Place returns the node/core assignment of a rank.
func (d *Deployment) Place(rank int) Placement { return d.place[rank] }

// SameNode reports whether two ranks share a node.
func (d *Deployment) SameNode(a, b int) bool {
	return d.place[a].Node == d.place[b].Node
}

// ComputeTime converts a flop count into virtual time on the given
// rank, including core-sharing and memory-contention slowdowns.
func (d *Deployment) ComputeTime(rank int, flops float64) vtime.Duration {
	if flops <= 0 || math.IsNaN(flops) {
		return 0
	}
	return vtime.Duration(math.Round(flops * d.computeNS[rank]))
}

// Path returns the network parameters governing a message from src to
// dst: the shared-memory path when they share a node, the (optionally
// topology-distance-dependent) interconnect otherwise. Self-messages
// use the intra-node path as well.
func (d *Deployment) Path(src, dst int) network.Params {
	if d.SameNode(src, dst) {
		return d.Cluster.IntraNode
	}
	t := &d.Cluster.Topology
	if t.Kind == TopoFlat {
		return d.Cluster.Interconnect
	}
	hops := t.Hops(d.place[src].Node, d.place[dst].Node, d.Cluster.Nodes)
	return t.pathAcross(d.Cluster.Interconnect, hops)
}

// CollectivePath returns the parameters used to cost a collective over
// the given members: intra-node if all members share one node, the
// interconnect otherwise.
func (d *Deployment) CollectivePath(members []int) network.Params {
	if len(members) == 0 {
		return d.Cluster.IntraNode
	}
	node := d.place[members[0]].Node
	for _, m := range members[1:] {
		if d.place[m].Node != node {
			return d.Cluster.Interconnect
		}
	}
	return d.Cluster.IntraNode
}

// MinLatency returns the smallest latency of any path class; the
// simulator's conservative wildcard-receive rule uses it as a lower
// bound on how soon a not-yet-sent message could arrive.
func (d *Deployment) MinLatency() vtime.Duration {
	l := d.Cluster.Interconnect.Latency
	if d.Cluster.IntraNode.Latency < l {
		l = d.Cluster.IntraNode.Latency
	}
	return l
}

// Oversubscription returns the largest number of ranks sharing a core.
func (d *Deployment) Oversubscription() int {
	max := 1
	for _, k := range d.perCore {
		if k > max {
			max = k
		}
	}
	return max
}

// String summarises the deployment for reports.
func (d *Deployment) String() string {
	return fmt.Sprintf("%s: %d ranks on %d nodes x %d cores (%s mapping, %dx oversubscribed)",
		d.Cluster.Name, d.Ranks, d.Cluster.Nodes, d.Cluster.CoresPerNode, d.Policy, d.Oversubscription())
}
