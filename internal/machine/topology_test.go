package machine

import (
	"bytes"
	"reflect"
	"testing"

	"pas2p/internal/vtime"
)

// TestEveryPresetCodecRoundTrip: each Table 2 preset survives the JSON
// codec bit-exactly — the `pas2p clusters -export` / `@file.json`
// custom-cluster path must not silently alter any preset field.
func TestEveryPresetCodecRoundTrip(t *testing.T) {
	for _, cl := range Presets() {
		t.Run(cl.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := SaveCluster(&buf, cl); err != nil {
				t.Fatalf("save: %v", err)
			}
			back, err := LoadCluster(&buf)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if !reflect.DeepEqual(cl, back) {
				t.Fatalf("round trip changed the model:\n%+v\nvs\n%+v", cl, back)
			}
		})
	}
}

// TestPresetTable pins the Table 2 rows: names, ISA, topology, and the
// cross-cluster compute-rate ordering the prediction experiments rely
// on (C fastest per core, D slowest).
func TestPresetTable(t *testing.T) {
	cases := []struct {
		cl           *Cluster
		name, isa    string
		nodes, cores int
	}{
		{ClusterA(), "Cluster A", "x86_64", 64, 2},
		{ClusterB(), "Cluster B", "x86_64", 8, 8},
		{ClusterC(), "Cluster C", "x86_64", 16, 16},
		{ClusterD(), "Cluster D", "ia64", 11, 16},
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		if tc.cl.Name != tc.name || tc.cl.ISA != tc.isa ||
			tc.cl.Nodes != tc.nodes || tc.cl.CoresPerNode != tc.cores {
			t.Errorf("preset drifted from Table 2: %+v", tc.cl)
		}
		if err := tc.cl.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", tc.name, err)
		}
		if seen[tc.cl.Name] {
			t.Errorf("duplicate preset name %q", tc.cl.Name)
		}
		seen[tc.cl.Name] = true
		// ByName resolves short, lowercase and full forms to the model.
		short := tc.name[len("Cluster "):]
		for _, alias := range []string{short, tc.name} {
			got := ByName(alias)
			if got == nil || !reflect.DeepEqual(got, tc.cl) {
				t.Errorf("ByName(%q) != %s preset", alias, tc.name)
			}
		}
	}
	if a, c, d := ClusterA(), ClusterC(), ClusterD(); !(d.CoreGFLOPS < a.CoreGFLOPS && a.CoreGFLOPS < c.CoreGFLOPS) {
		t.Errorf("per-core rate ordering broken: D %.1f, A %.1f, C %.1f",
			d.CoreGFLOPS, a.CoreGFLOPS, c.CoreGFLOPS)
	}
}

// topologies under test: a 4-ary fat tree and a torus, both over a
// 16-node machine.
func testTopologies() []struct {
	name  string
	topo  Topology
	nodes int
} {
	return []struct {
		name  string
		topo  Topology
		nodes int
	}{
		{"fat-tree", Topology{Kind: TopoFatTree, Radix: 4,
			HopLatency: vtime.Microsecond, HopBandwidthTaper: 0.5}, 16},
		{"torus2d", Topology{Kind: TopoTorus2D,
			HopLatency: vtime.Microsecond, HopBandwidthTaper: 0.9}, 16},
	}
}

// TestHopsMetricProperties: over every node pair of each topology the
// hop count is zero exactly on the diagonal, symmetric, and satisfies
// the triangle inequality over every triple (the fat tree's
// hierarchical distance is even ultrametric, which implies it).
func TestHopsMetricProperties(t *testing.T) {
	for _, tc := range testTopologies() {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.topo.Validate(); err != nil {
				t.Fatal(err)
			}
			n := tc.nodes
			for a := 0; a < n; a++ {
				if h := tc.topo.Hops(a, a, n); h != 0 {
					t.Fatalf("Hops(%d,%d) = %d, want 0", a, a, h)
				}
				for b := 0; b < n; b++ {
					hab := tc.topo.Hops(a, b, n)
					if a != b && hab < 1 {
						t.Fatalf("Hops(%d,%d) = %d, want >= 1", a, b, hab)
					}
					if hba := tc.topo.Hops(b, a, n); hba != hab {
						t.Fatalf("asymmetric: Hops(%d,%d)=%d but Hops(%d,%d)=%d",
							a, b, hab, b, a, hba)
					}
				}
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					for c := 0; c < n; c++ {
						ab := tc.topo.Hops(a, b, n)
						bc := tc.topo.Hops(b, c, n)
						ac := tc.topo.Hops(a, c, n)
						if ac > ab+bc {
							t.Fatalf("triangle inequality violated: d(%d,%d)=%d > d(%d,%d)=%d + d(%d,%d)=%d",
								a, c, ac, a, b, ab, b, c, bc)
						}
					}
				}
			}
		})
	}
}

// TestFatTreeUltrametric: the hierarchical fat-tree distance satisfies
// the stronger ultrametric bound d(a,c) <= max(d(a,b), d(b,c)).
func TestFatTreeUltrametric(t *testing.T) {
	topo := Topology{Kind: TopoFatTree, Radix: 4, HopBandwidthTaper: 1}
	const n = 16
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				ab, bc, ac := topo.Hops(a, b, n), topo.Hops(b, c, n), topo.Hops(a, c, n)
				max := ab
				if bc > max {
					max = bc
				}
				if ac > max {
					t.Fatalf("ultrametric violated: d(%d,%d)=%d > max(d(%d,%d)=%d, d(%d,%d)=%d)",
						a, c, ac, a, b, ab, b, c, bc)
				}
			}
		}
	}
}

// TestPathAcrossMonotone: more hops never make a path faster — latency
// is non-decreasing and bandwidth non-increasing in the hop count, and
// one hop leaves the base parameters untouched.
func TestPathAcrossMonotone(t *testing.T) {
	for _, tc := range testTopologies() {
		t.Run(tc.name, func(t *testing.T) {
			base := GigabitEthernet()
			if got := tc.topo.pathAcross(base, 1); got != base {
				t.Fatalf("single hop altered the base path: %+v", got)
			}
			prev := tc.topo.pathAcross(base, 1)
			for hops := 2; hops <= 6; hops++ {
				p := tc.topo.pathAcross(base, hops)
				if p.Latency < prev.Latency {
					t.Fatalf("latency decreased at %d hops: %v < %v", hops, p.Latency, prev.Latency)
				}
				if p.Bandwidth > prev.Bandwidth {
					t.Fatalf("bandwidth increased at %d hops: %v > %v", hops, p.Bandwidth, prev.Bandwidth)
				}
				if !p.Valid() {
					t.Fatalf("tapered path invalid at %d hops: %+v", hops, p)
				}
				prev = p
			}
		})
	}
}

// TestTorusHopsScaleWithSide: wraparound caps the torus distance at
// side/2 per axis, so the diameter of an s x s torus is 2*(s/2).
func TestTorusHopsScaleWithSide(t *testing.T) {
	topo := Topology{Kind: TopoTorus2D, HopBandwidthTaper: 1}
	for _, side := range []int{2, 3, 4, 5} {
		n := side * side
		maxHops := 0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if h := topo.Hops(a, b, n); h > maxHops {
					maxHops = h
				}
			}
		}
		want := 2 * (side / 2)
		if want < 1 {
			want = 1
		}
		if maxHops != want {
			t.Errorf("torus %dx%d diameter = %d hops, want %d", side, side, maxHops, want)
		}
	}
}
