module pas2p

go 1.22
