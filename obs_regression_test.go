// Regression tests for the observability seam at the public API level:
// a nil observer must keep Analyze on the exact uninstrumented path
// (zero extra allocations), and a live observer must record the stage
// spans the profiling tooling relies on.
package pas2p_test

import (
	"testing"

	"pas2p"
	"pas2p/internal/logical"
	"pas2p/internal/phase"
)

// tracedRing instruments a small iterative ring application and
// returns its tracefile.
func tracedRing(t testing.TB, procs, iters int) *pas2p.Trace {
	t.Helper()
	app := pas2p.App{
		Name:  "obs-ring",
		Procs: procs,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			for i := 0; i < iters; i++ {
				c.Compute(1e6)
				c.Sendrecv((c.Rank()+1)%n, 0, []float64{float64(i)}, (c.Rank()+n-1)%n, 0)
				c.Allreduce([]float64{1}, pas2p.Sum)
			}
		},
	}
	d, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// TestAnalyzeNilObserverZeroExtraAllocs pins the cost of the disabled
// observer seam to zero: Analyze with a nil Observer must allocate
// exactly what composing its stages directly (no seam at all) does.
func TestAnalyzeNilObserverZeroExtraAllocs(t *testing.T) {
	tr := tracedRing(t, 4, 20)
	cfg := pas2p.DefaultPhaseConfig()

	// Baseline: the same three stages with no observer seam in sight.
	base := testing.AllocsPerRun(5, func() {
		l, err := logical.Order(tr)
		if err != nil {
			t.Fatal(err)
		}
		an, err := phase.Extract(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := an.BuildTable(1); err != nil {
			t.Fatal(err)
		}
	})
	got := testing.AllocsPerRun(5, func() {
		if _, _, err := pas2p.Analyze(tr, cfg, 1); err != nil {
			t.Fatal(err)
		}
	})
	if got > base {
		t.Errorf("Analyze with nil observer allocates %.0f allocs/run vs %.0f for the bare stages; the disabled seam must be free",
			got, base)
	}
}

// TestAnalyzeObserverRecordsSpans checks the enabled path: each
// pipeline stage leaves a named span in the registry.
func TestAnalyzeObserverRecordsSpans(t *testing.T) {
	tr := tracedRing(t, 4, 20)
	cfg := pas2p.DefaultPhaseConfig()
	o := pas2p.NewObserver()
	cfg.Observer = o
	if _, _, err := pas2p.Analyze(tr, cfg, 1); err != nil {
		t.Fatal(err)
	}
	snap := o.Registry.Snapshot()
	seen := map[string]bool{}
	for _, sp := range snap.Spans {
		seen[sp.Name] = true
	}
	for _, want := range []string{"analyze.order", "phase.extract", "analyze.table"} {
		if !seen[want] {
			t.Errorf("span %q not recorded; got %v", want, seen)
		}
	}
}
