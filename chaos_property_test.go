// Chaos property tests: the fault-injection layer must never change
// what PAS2P *measures*, only when things happen. A fully-recovering
// fault schedule perturbs physical timings but leaves the logical
// structure — and therefore the phase set, the signature, and the
// prediction — untouched; an unrecoverable schedule must degrade
// gracefully and deterministically.
package pas2p_test

import (
	"fmt"
	"reflect"
	"testing"

	"pas2p"
	"pas2p/internal/vtime"
)

// chaosPipeline traces app on base (optionally under fault injection),
// analyses the trace, and returns the analysis, phase table, and the
// PET of executing the resulting signature on target.
func chaosPipeline(t *testing.T, app pas2p.App, base, target *pas2p.Deployment,
	inj *pas2p.FaultInjector) (*pas2p.PhaseAnalysis, *pas2p.PhaseTable, vtime.Duration) {
	t.Helper()
	r, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true, Faults: inj})
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if err := r.Trace.Validate(); err != nil {
		t.Fatalf("faulted trace invalid: %v", err)
	}
	an, tb, err := pas2p.Analyze(r.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	sig, _, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := sig.Execute(target)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return an, tb, res.PET
}

// scaledRows counts table rows carrying a pair-bias correction.
func scaledRows(tb *pas2p.PhaseTable) int {
	n := 0
	for _, r := range tb.Rows {
		if r.ETScale != 0 && r.ETScale != 1 {
			n++
		}
	}
	return n
}

// phaseShape reduces an analysis to its logical content: per-phase
// occurrence counts keyed by phase ID. Fault delays move physical
// timestamps, so durations may differ — the *structure* may not.
func phaseShape(an *pas2p.PhaseAnalysis) map[int]int {
	shape := make(map[int]int, len(an.Phases))
	for _, p := range an.Phases {
		shape[p.ID] = len(p.Occurrences)
	}
	return shape
}

// TestChaosRecoveryInvariant is the tentpole property: for a corpus of
// seeded random apps, a traced run under a fully-recovering message
// fault schedule (loss bounded by retransmission, duplication, delay)
// yields the identical phase set and — for tables without a pair-bias
// correction — a bit-identical prediction: checkpoints are logical
// positions, so the faults can only move physical clocks, never the
// logical signature. Tables that do carry an ETScale correction embed
// one physically measured ratio, whose jitter-induced wobble must stay
// inside a tight envelope.
func TestChaosRecoveryInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	clusterA, clusterB := pas2p.ClusterA(), pas2p.ClusterB()
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			procs := []int{4, 8}[seed%2]
			app := genApp(seed, procs)
			dA, err := pas2p.NewDeployment(clusterA, procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			dB, err := pas2p.NewDeployment(clusterB, procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			an0, tb0, pet0 := chaosPipeline(t, app, dA, dB, nil)

			// Jitter guarantees injection even for apps whose segments
			// are all collectives (no point-to-point traffic to lose).
			inj, err := pas2p.NewFaultInjector(pas2p.FaultConfig{
				Seed: seed, LossRate: 0.05, DupRate: 0.03, DelayRate: 0.10,
				ComputeJitter: 0.01,
			})
			if err != nil {
				t.Fatal(err)
			}
			an1, tb1, pet1 := chaosPipeline(t, app, dA, dB, inj)

			rep := inj.Report()
			if rep.Injected == 0 && rep.ClockPerturbations == 0 {
				t.Fatal("fault schedule injected nothing; property vacuous")
			}
			if rep.Unrecovered != 0 {
				t.Fatalf("message faults must all recover, %d did not", rep.Unrecovered)
			}
			if !reflect.DeepEqual(phaseShape(an0), phaseShape(an1)) {
				t.Fatalf("fault schedule changed the phase set:\nfault-free: %v\nfaulted:    %v",
					phaseShape(an0), phaseShape(an1))
			}
			rel0, rel1 := tb0.RelevantRows(), tb1.RelevantRows()
			if len(rel0) != len(rel1) {
				t.Fatalf("relevant phase count changed: %d vs %d", len(rel0), len(rel1))
			}
			for i := range rel0 {
				if rel0[i].PhaseID != rel1[i].PhaseID || rel0[i].Weight != rel1[i].Weight {
					t.Fatalf("relevant row %d changed: (%d,w%d) vs (%d,w%d)", i,
						rel0[i].PhaseID, rel0[i].Weight, rel1[i].PhaseID, rel1[i].Weight)
				}
			}
			// Tables without a pair-bias correction predict from purely
			// logical signature content, so the prediction must be
			// bit-identical. A recorded ETScale is a *physically*
			// measured ratio (mean occurrence duration over pair cut on
			// the base run), so compute jitter legitimately wobbles it;
			// the prediction must then stay within the jitter envelope
			// rather than match exactly.
			if scaledRows(tb0)+scaledRows(tb1) == 0 {
				if pet1 != pet0 {
					t.Fatalf("recovering faults changed the prediction: PET %v vs fault-free %v",
						pet1, pet0)
				}
			} else {
				diff := absP(pet1.Seconds()-pet0.Seconds()) / pet0.Seconds()
				if diff > 0.05 {
					t.Fatalf("corrected prediction drifted %.2f%% under recovered faults: PET %v vs fault-free %v",
						100*diff, pet1, pet0)
				}
			}
		})
	}
}

// TestChaosSeedDeterminism: the same (seed, config) must reproduce the
// identical fault schedule, recovery trace, and prediction — including
// crash/restart faults during signature execution — across independent
// injectors.
func TestChaosSeedDeterminism(t *testing.T) {
	app := genApp(5, 8)
	dA, err := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := pas2p.NewDeployment(pas2p.ClusterB(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pas2p.FaultConfig{
		Seed: 42, LossRate: 0.05, DupRate: 0.02, DelayRate: 0.08,
		CrashRate: 0.3, ComputeJitter: 0.01,
	}
	run := func() (*pas2p.Outcome, pas2p.FaultReport) {
		inj, err := pas2p.NewFaultInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := pas2p.Predict(pas2p.Experiment{
			App: app, Base: dA, Target: dB,
			SkipTargetAET: true,
			Faults:        inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, inj.Report()
	}
	out1, rep1 := run()
	out2, rep2 := run()
	if rep1.Injected == 0 {
		t.Fatal("schedule injected nothing")
	}
	if rep1 != rep2 {
		t.Fatalf("fault schedule not reproducible:\n%+v\n%+v", rep1, rep2)
	}
	if out1.PET != out2.PET || out1.SET != out2.SET || out1.Degraded != out2.Degraded {
		t.Fatalf("outcome not reproducible: PET %v/%v SET %v/%v degraded %v/%v",
			out1.PET, out2.PET, out1.SET, out2.SET, out1.Degraded, out2.Degraded)
	}
	if !reflect.DeepEqual(out1.LostPhases, out2.LostPhases) {
		t.Fatalf("lost phases differ: %v vs %v", out1.LostPhases, out2.LostPhases)
	}

	// A different seed must produce a different schedule (overwhelmingly
	// likely at these rates over thousands of events).
	cfg.Seed = 43
	_, rep3 := run()
	if rep3 == rep1 {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestChaosGracefulDegradation: an unrecoverable crash schedule
// (certain crash, zero restart attempts) must lose every relevant
// phase, flag the outcome as degraded, and still return cleanly with
// the PET of the surviving (empty) phase set.
func TestChaosGracefulDegradation(t *testing.T) {
	app := genApp(3, 8)
	dA, err := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := pas2p.NewDeployment(pas2p.ClusterB(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := pas2p.NewFaultInjector(pas2p.FaultConfig{
		Seed: 11, CrashRate: 1, MaxRestartAttempts: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pas2p.Predict(pas2p.Experiment{
		App: app, Base: dA, Target: dB,
		SkipTargetAET: true,
		Faults:        inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("certain crashes with no restart budget must degrade the prediction")
	}
	if len(out.LostPhases) == 0 {
		t.Fatal("degraded outcome reports no lost phases")
	}
	if out.PET != 0 {
		t.Fatalf("all phases lost, yet PET = %v (Eq. 1 must cover surviving phases only)", out.PET)
	}
	rep := inj.Report()
	if rep.Unrecovered == 0 || rep.Recovered != 0 {
		t.Fatalf("report inconsistent with total loss: %+v", rep)
	}
	if rep.PhasesLost != int64(len(out.LostPhases)) {
		t.Fatalf("report counts %d lost phases, outcome lists %d",
			rep.PhasesLost, len(out.LostPhases))
	}

	// A generous restart budget with the same crash rate must recover:
	// every phase survives, at a higher predicted cost.
	injR, err := pas2p.NewFaultInjector(pas2p.FaultConfig{
		Seed: 11, CrashRate: 0.5, MaxRestartAttempts: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	outR, err := pas2p.Predict(pas2p.Experiment{
		App: app, Base: dA, Target: dB,
		SkipTargetAET: true,
		Faults:        injR,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outR.Degraded {
		t.Fatalf("recovered crash schedule still degraded (lost %v)", outR.LostPhases)
	}
	base, err := pas2p.Predict(pas2p.Experiment{
		App: app, Base: dA, Target: dB, SkipTargetAET: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery costs are charged at checkpoint restore, before phase
	// measurement starts: they inflate the signature's own execution
	// time (SET) but must leave the prediction (PET) untouched.
	if outR.PET != base.PET {
		t.Fatalf("recovered crashes changed the prediction: PET %v vs fault-free %v",
			outR.PET, base.PET)
	}
	if repR := injR.Report(); repR.CrashFailures > 0 && outR.SET <= base.SET {
		t.Fatalf("restart retries are free: faulted SET %v <= fault-free %v", outR.SET, base.SET)
	}
}
