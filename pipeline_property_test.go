// Whole-pipeline property tests: a seeded generator produces random
// (but deadlock-free by construction) SPMD applications, and every one
// must survive the full PAS2P pipeline with its invariants intact —
// deterministic execution, valid traces and models, machine-independent
// logical structure, and a same-machine prediction close to the truth.
package pas2p_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pas2p"
	"pas2p/internal/vtime"
)

// genApp builds a random iterative SPMD program from a seed. Segments
// draw from symmetric exchanges, collectives and master gathers, so
// the program can never deadlock; compute blocks vary per segment.
func genApp(seed int64, procs int) pas2p.App {
	rng := rand.New(rand.NewSource(seed))
	type segment struct {
		kind    int
		repeats int
		flops   float64
		bytes   int
		tag     int
	}
	nseg := 3 + rng.Intn(4)
	segs := make([]segment, nseg)
	for i := range segs {
		segs[i] = segment{
			kind:    rng.Intn(6),
			repeats: 2 + rng.Intn(8),
			flops:   float64(1+rng.Intn(50)) * 1e5,
			bytes:   64 << rng.Intn(8),
			tag:     i + 1,
		}
	}
	outer := 2 + rng.Intn(3)
	return pas2p.App{
		Name:  fmt.Sprintf("fuzz-%d", seed),
		Procs: procs,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			me := c.Rank()
			for o := 0; o < outer; o++ {
				for _, s := range segs {
					for r := 0; r < s.repeats; r++ {
						c.Compute(s.flops)
						switch s.kind {
						case 0: // ring exchange
							c.SendrecvN((me+1)%n, s.tag, s.bytes, (me+n-1)%n, s.tag)
						case 1: // pairwise exchange
							peer := me ^ 1
							if peer < n {
								c.SendrecvN(peer, s.tag, s.bytes, peer, s.tag)
							}
						case 2:
							c.Allreduce([]float64{float64(me)}, pas2p.Sum)
						case 3:
							c.Bcast(0, []float64{1, 2, 3})
						case 4: // master gather, explicit sources
							if me == 0 {
								for src := 1; src < n; src++ {
									c.RecvN(src, s.tag)
								}
							} else {
								c.SendN(0, s.tag, s.bytes)
							}
						default:
							c.Barrier()
						}
					}
				}
			}
		},
	}
}

func TestPipelinePropertyRandomApps(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	clusterA := pas2p.ClusterA()
	clusterC := pas2p.ClusterC()
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			procs := []int{4, 8, 16}[seed%3]
			app := genApp(seed, procs)
			dA, err := pas2p.NewDeployment(clusterA, procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			dC, err := pas2p.NewDeployment(clusterC, procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}

			// 1. Deterministic execution.
			r1, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dA, Trace: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			r2, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dA, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Elapsed != r2.Elapsed || len(r1.Trace.Events) != len(r2.Trace.Events) {
				t.Fatal("nondeterministic execution")
			}

			// 2. Trace and model invariants.
			if err := r1.Trace.Validate(); err != nil {
				t.Fatalf("trace: %v", err)
			}
			lA, err := pas2p.OrderLogical(r1.Trace)
			if err != nil {
				t.Fatalf("order: %v", err)
			}
			if err := lA.Validate(); err != nil {
				t.Fatalf("logical: %v", err)
			}

			// 3. Machine independence: the same program traced on a
			// different cluster yields the same logical structure
			// (explicit sources only, so matching is fixed).
			rc, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dC, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			lC, err := pas2p.OrderLogical(rc.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if lA.NumTicks() != lC.NumTicks() {
				t.Fatalf("logical trace machine-dependent: %d vs %d ticks", lA.NumTicks(), lC.NumTicks())
			}

			// 4. Phases tile the run and Eq. 1 over all phases
			// reconstructs the base AET.
			an, tb, err := pas2p.Analyze(r1.Trace, pas2p.DefaultPhaseConfig(), 1)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if err := an.Validate(); err != nil {
				t.Fatalf("analysis: %v", err)
			}
			pet := tb.PredictedAET(false).Seconds()
			aet := r1.Elapsed.Seconds()
			if e := absP(pet-aet) / aet; e > 0.05 {
				t.Errorf("Eq.1 over all phases off by %.1f%%", 100*e)
			}

			// 5. Same-machine signature prediction lands near truth.
			opts := pas2p.DefaultSignatureOptions()
			opts.Checkpoint.SnapshotBase = 100 * vtime.Microsecond
			opts.Checkpoint.RestartBase = 150 * vtime.Microsecond
			opts.StateBytesPerRank = 1 << 20
			sig, _, err := pas2p.BuildSignature(app, tb, dA, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := sig.Execute(dA)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			plain, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dA})
			if err != nil {
				t.Fatal(err)
			}
			trueAET := plain.Elapsed.Seconds()
			if e := absP(pas2p.Seconds(res.PET)-trueAET) / trueAET; e > 0.30 {
				t.Errorf("signature PETE %.1f%% (PET %.3fs, AET %.3fs)",
					100*e, pas2p.Seconds(res.PET), trueAET)
			}
		})
	}
}

func absP(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestPipelineWithRealismFlags re-runs a few random apps with the NIC
// contention and algorithmic-collectives models enabled end to end:
// the pipeline's invariants and prediction quality must survive the
// richer timing models.
func TestPipelineWithRealismFlags(t *testing.T) {
	for seed := int64(20); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			procs := 8
			app := genApp(seed, procs)
			dA, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			dB, err := pas2p.NewDeployment(pas2p.ClusterB(), procs, pas2p.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			out, err := pas2p.Predict(pas2p.Experiment{
				App: app, Base: dA, Target: dB,
				NICContention:          true,
				AlgorithmicCollectives: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.PETEPercent > 30 {
				t.Errorf("PETE %.2f%% under realism flags", out.PETEPercent)
			}
			if out.SET <= 0 || out.PET <= 0 {
				t.Error("degenerate outputs")
			}
		})
	}
}
