// Masterworker demonstrates §6's pathological case for PAS2P: a
// master/worker farm where each worker receives one job, computes, and
// returns one result. Nothing repeats, so the analysis finds a
// dominant phase with weight 1 and the signature's execution time
// approaches the application's own — the tool degrades gracefully but
// gains nothing. With more rounds the farm becomes repetitive again
// and the signature shrinks back to a small fraction of the runtime.
package main

import (
	"fmt"
	"log"

	"pas2p"
)

func main() {
	const procs = 16
	base, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-14s %-16s %-10s %-10s %s\n",
		"workload", "total phases", "dominant weight", "SET(s)", "AET(s)", "SET/AET")
	for _, workload := range []string{"rounds1", "rounds5", "rounds50"} {
		app, err := pas2p.MakeApp("masterworker", procs, workload)
		if err != nil {
			log.Fatal(err)
		}
		traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		an, tb, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
		if err != nil {
			log.Fatal(err)
		}
		dominant := an.SortedByTotalDur()[0]

		sig, _, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sig.Execute(base)
		if err != nil {
			log.Fatal(err)
		}
		full, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base})
		if err != nil {
			log.Fatal(err)
		}
		aet := pas2p.Seconds(full.Elapsed)
		set := pas2p.Seconds(res.SET)
		fmt.Printf("%-10s %-14d %-16d %-10.2f %-10.2f %.1f%%\n",
			workload, len(an.Phases), dominant.Weight(), set, aet, 100*set/aet)
	}
	fmt.Println("\nWith a single round the dominant phase has weight 1: executing the")
	fmt.Println("signature costs about as much as running the whole application,")
	fmt.Println("exactly the limitation §6 of the paper describes. Repetition across")
	fmt.Println("rounds restores the signature's advantage.")
}
