// Crosscluster reproduces the paper's core experiment in miniature:
// build an application signature once on the base machine (cluster A),
// then carry it to other clusters to predict the application's
// execution time there — including the paper's §7 limitation that a
// signature cannot be ported to a machine with a different instruction
// set (cluster D), where PAS2P instead rebuilds it from the phase
// table.
package main

import (
	"errors"
	"fmt"
	"log"

	"pas2p"
)

func main() {
	const procs = 32
	app, err := pas2p.MakeApp("cg", procs, "classB")
	if err != nil {
		log.Fatal(err)
	}
	base, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}

	// Stage A once, on the base machine.
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	_, tb, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	sig, sct, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature for %s built on %s (SCT %.2fs, %d relevant phases)\n\n",
		app.Name, base.Cluster.Name, pas2p.Seconds(sct), len(tb.RelevantRows()))

	fmt.Printf("%-12s %-10s %-10s %-10s %-8s\n", "target", "SET(s)", "PET(s)", "AET(s)", "PETE")
	for _, cl := range []*pas2p.Cluster{pas2p.ClusterA(), pas2p.ClusterB(), pas2p.ClusterC(), pas2p.ClusterD()} {
		target, err := pas2p.NewDeployment(cl, procs, pas2p.MapBlock)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sig.Execute(target)
		var mismatch *pas2p.ErrISAMismatch
		if errors.As(err, &mismatch) {
			// §7: different ISA. Rebuild the signature from the phase
			// table on the target machine, then execute there.
			fmt.Printf("%-12s signature not portable (%s != %s); rebuilding from phase table...\n",
				cl.Name, mismatch.TargetISA, mismatch.BaseISA)
			reb, _, rerr := pas2p.BuildSignature(app, tb, target, pas2p.DefaultSignatureOptions())
			if rerr != nil {
				log.Fatal(rerr)
			}
			res, err = reb.Execute(target)
		}
		if err != nil {
			log.Fatal(err)
		}
		full, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: target})
		if err != nil {
			log.Fatal(err)
		}
		aet := pas2p.Seconds(full.Elapsed)
		pet := pas2p.Seconds(res.PET)
		fmt.Printf("%-12s %-10.2f %-10.2f %-10.2f %.2f%%\n",
			cl.Name, pas2p.Seconds(res.SET), pet, aet, 100*abs(pet-aet)/aet)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
