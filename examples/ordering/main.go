// Ordering visualises the paper's §3.2 (Figs. 3-5): the same physical
// trace ordered with the classic Lamport rules versus the PAS2P
// ordering, where a receive is pinned to its send's logical time + 1
// and the tick table holds at most one event per process per tick.
// Run it to see why the PAS2P ordering makes the logical trace
// machine-independent: the wildcard receives of a master arrive in a
// physical order that depends on the cluster, but their PAS2P logical
// times depend only on the matched sends.
package main

import (
	"fmt"
	"log"

	"pas2p"
)

// app: three workers with different compute loads send to a master
// through a wildcard receive; the master answers; one barrier closes
// each round. Arrival order at the master is machine-dependent.
func app() pas2p.App {
	return pas2p.App{
		Name:  "ordering-demo",
		Procs: 4,
		Body: func(c *pas2p.Comm) {
			for round := 0; round < 2; round++ {
				if c.Rank() == 0 {
					for i := 1; i < 4; i++ {
						c.Recv(pas2p.AnySource, 1)
					}
					for i := 1; i < 4; i++ {
						c.Send(i, 2, []float64{1})
					}
				} else {
					// Worker 3 computes least and sends first; worker 1
					// computes most and sends last.
					c.Compute(float64(4-c.Rank()) * 2e7)
					c.Send(0, 1, []float64{float64(c.Rank())})
					c.Recv(0, 2)
				}
				c.Barrier()
			}
		},
	}
}

func dump(title string, l *pas2p.Logical) {
	fmt.Printf("\n%s (%d ticks)\n", title, l.NumTicks())
	fmt.Printf("%-6s", "tick")
	for p := 0; p < l.Trace.Procs; p++ {
		fmt.Printf(" %-14s", fmt.Sprintf("P%d", p))
	}
	fmt.Println()
	for t := range l.Ticks {
		fmt.Printf("%-6d", t)
		for p := 0; p < l.Trace.Procs; p++ {
			cell := "."
			if i := l.EventAt(t, int32(p)); i >= 0 {
				e := &l.Trace.Events[i]
				switch {
				case e.Kind.String() == "Send":
					cell = fmt.Sprintf("send->%d t%d", e.Peer, e.Tag)
				case e.Kind.String() == "Recv":
					cell = fmt.Sprintf("recv<-%d t%d", e.Peer, e.Tag)
				default:
					cell = "collective"
				}
			}
			fmt.Printf(" %-14s", cell)
		}
		fmt.Println()
	}
}

func main() {
	for _, cl := range []*pas2p.Cluster{pas2p.ClusterA(), pas2p.ClusterC()} {
		d, err := pas2p.NewDeployment(cl, 4, pas2p.MapBlock)
		if err != nil {
			log.Fatal(err)
		}
		traced, err := pas2p.RunApp(app(), pas2p.RunConfig{Deployment: d, Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== physical trace from %s ===\n", cl.Name)
		fmt.Println("per-process event order (machine-dependent for the master's wildcard receives):")
		for p, evs := range traced.Trace.PerProcess() {
			fmt.Printf(" P%d:", p)
			for i := range evs {
				e := &evs[i]
				fmt.Printf(" %s(%d)", e.Kind, e.Peer)
			}
			fmt.Println()
		}

		lam, err := pas2p.OrderLamport(traced.Trace)
		if err != nil {
			log.Fatal(err)
		}
		dump("Lamport ordering (Fig. 3 left): driven by physical occurrence", lam)

		p2p, err := pas2p.OrderLogical(traced.Trace)
		if err != nil {
			log.Fatal(err)
		}
		dump("PAS2P ordering (Figs. 3-5): receives pinned to their sends", p2p)
	}
	fmt.Println("\nThe PAS2P tick tables above are identical across both clusters;")
	fmt.Println("the Lamport ones follow each machine's physical interleaving.")
}
