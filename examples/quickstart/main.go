// Quickstart: write a small message-passing application against the
// pas2p API, trace it on a base cluster, extract its phases, build the
// signature, and predict its execution time on a different cluster —
// the complete PAS2P workflow in one file.
package main

import (
	"fmt"
	"log"

	"pas2p"
)

// heatApp is a toy 1-D heat diffusion: every iteration exchanges halo
// cells with both neighbours, computes the stencil, and reduces the
// global residual. It is exactly the kind of iterative SPMD code PAS2P
// characterises well.
func heatApp(procs, iters, cells int) pas2p.App {
	return pas2p.App{
		Name:  "heat1d",
		Procs: procs,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			left := (c.Rank() + n - 1) % n
			right := (c.Rank() + 1) % n
			field := make([]float64, cells)
			for i := range field {
				field[i] = float64(c.Rank()*cells + i)
			}
			for it := 0; it < iters; it++ {
				// Halo exchange: one cell each way (real data!).
				lh := c.Sendrecv(left, 1, field[:1], right, 1)
				rh := c.Sendrecv(right, 2, field[cells-1:], left, 2)
				// Declare the stencil's cost and actually compute it.
				c.Compute(5e7)
				prev := lh[0]
				for i := 0; i < cells-1; i++ {
					cur := field[i]
					field[i] = 0.25*prev + 0.5*field[i] + 0.25*field[i+1]
					prev = cur
				}
				field[cells-1] = 0.25*prev + 0.5*field[cells-1] + 0.25*rh[0]
				// Global residual.
				c.Allreduce([]float64{field[0]}, pas2p.Sum)
			}
		},
	}
}

func main() {
	const procs = 16
	app := heatApp(procs, 200, 256)

	base, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}
	target, err := pas2p.NewDeployment(pas2p.ClusterC(), procs, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}

	// Stage A, step 1: instrumented run on the base machine.
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	st := traced.Trace.Stats()
	fmt.Printf("traced %d events (%d sends / %d recvs / %d collectives)\n",
		st.Events, st.Sends, st.Recvs, st.Collectives)

	// Stage A, steps 2-3: logical model + phase extraction.
	an, tb, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(an.Summary())

	// Stage A, step 4: signature construction (simulated DMTCP).
	sig, sct, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature constructed in %.2fs (virtual)\n", pas2p.Seconds(sct))

	// Stage B: execute the signature on the target and predict.
	res, err := sig.Execute(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature execution time (SET): %.2fs\n", pas2p.Seconds(res.SET))
	fmt.Printf("predicted execution time (PET): %.2fs\n", pas2p.Seconds(res.PET))

	// Ground truth: run the whole application on the target.
	full, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: target})
	if err != nil {
		log.Fatal(err)
	}
	aet := pas2p.Seconds(full.Elapsed)
	pet := pas2p.Seconds(res.PET)
	fmt.Printf("actual execution time    (AET): %.2fs\n", aet)
	fmt.Printf("prediction error: %.2f%%  |  SET is %.2f%% of AET\n",
		100*abs(pet-aet)/aet, 100*pas2p.Seconds(res.SET)/aet)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
