// Workloadscaling demonstrates the workload-effect extension the paper
// points to ([2], Canillas et al.): a signature predicts only the data
// set it was analysed with, but analysing the application at two small
// workloads lets PAS2P fit per-phase scaling laws and extrapolate the
// execution time of a much larger run that is never executed in full.
package main

import (
	"fmt"
	"log"

	"pas2p"
)

func main() {
	const procs = 16
	base, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}

	// The workload axis for NPB CG: the matrix nonzero count.
	nnz := map[string]float64{
		"classA": 1.85e6, "classB": 1.31e7, "classC": 3.67e7,
	}

	analyze := func(class string) *pas2p.PhaseAnalysis {
		app, err := pas2p.MakeApp("cg", procs, class)
		if err != nil {
			log.Fatal(err)
		}
		traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		an, _, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analysed cg %s: %d phases\n", class, len(an.Phases))
		return an
	}

	// Fit on the two cheap classes.
	model, err := pas2p.FitWorkloadModel([]pas2p.WorkloadPoint{
		{Param: nnz["classA"], Analysis: analyze("classA")},
		{Param: nnz["classB"], Analysis: analyze("classB")},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Extrapolate class C and compare against the real run.
	predicted := pas2p.Seconds(model.Predict(nnz["classC"]))
	appC, err := pas2p.MakeApp("cg", procs, "classC")
	if err != nil {
		log.Fatal(err)
	}
	full, err := pas2p.RunApp(appC, pas2p.RunConfig{Deployment: base})
	if err != nil {
		log.Fatal(err)
	}
	actual := pas2p.Seconds(full.Elapsed)
	fmt.Printf("\nclass C extrapolated from A+B: %.1fs\n", predicted)
	fmt.Printf("class C actually measured:     %.1fs\n", actual)
	fmt.Printf("workload-extrapolation error:  %.1f%%\n", 100*abs(predicted-actual)/actual)
	fmt.Println("\n(The signature itself stays exact for the analysed data set; this")
	fmt.Println("extension trades accuracy for never running the big workload at all.)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
