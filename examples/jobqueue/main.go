// Jobqueue exercises the paper's §1 motivation end to end: PAS2P
// signatures supply runtime estimates for a batch queue. Applications
// are analysed once on the base cluster; their signatures execute on
// the target cluster (seconds of work) to produce PET estimates; an
// EASY-backfilling scheduler then plans the queue with those estimates
// and the run is compared against the same queue planned with typical
// inflated user guesses.
package main

import (
	"fmt"
	"log"

	"pas2p"
)

func main() {
	target, err := pas2p.NewDeployment(pas2p.ClusterB(), 16, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}
	base, err := pas2p.NewDeployment(pas2p.ClusterA(), 16, pas2p.MapBlock)
	if err != nil {
		log.Fatal(err)
	}

	// Three applications users keep submitting.
	type appJob struct {
		name, workload string
		cores          int
	}
	kinds := []appJob{
		{"cg", "classA", 16},
		{"moldy", "tip4p-short", 8},
		{"smg2000", "-n 120 solver 3", 16},
	}

	fmt.Println("building signatures and predicting runtimes on the target...")
	pet := map[string]float64{}
	aet := map[string]float64{}
	for _, k := range kinds {
		app, err := pas2p.MakeApp(k.name, 16, k.workload)
		if err != nil {
			log.Fatal(err)
		}
		out, err := pas2p.Predict(pas2p.Experiment{App: app, Base: base, Target: target})
		if err != nil {
			log.Fatal(err)
		}
		pet[k.name] = pas2p.Seconds(out.PET)
		aet[k.name] = pas2p.Seconds(out.AETTarget)
		fmt.Printf("  %-8s PET %.1fs (true %.1fs, %.2f%% off) — signature ran %.1fs\n",
			k.name, pet[k.name], aet[k.name], out.PETEPercent, pas2p.Seconds(out.SET))
	}

	// A queue of 60 submissions of those applications.
	mkJobs := func(estimate func(name string, i int) float64) []pas2p.SchedJob {
		var jobs []pas2p.SchedJob
		for i := 0; i < 60; i++ {
			k := kinds[i%len(kinds)]
			jobs = append(jobs, pas2p.SchedJob{
				ID:       i,
				Arrival:  pas2p.VTime(float64(i*30) * 1e9),
				Cores:    k.cores,
				Runtime:  secondsToDur(aet[k.name]),
				Estimate: secondsToDur(estimate(k.name, i)),
			})
		}
		return jobs
	}

	const clusterCores = 48
	withUsers, err := pas2p.ScheduleJobs(mkJobs(func(name string, i int) float64 {
		return aet[name] * float64(2+(i*31)%7) // 2x-8x padding
	}), clusterCores, pas2p.BackfillShortest)
	if err != nil {
		log.Fatal(err)
	}
	withPAS2P, err := pas2p.ScheduleJobs(mkJobs(func(name string, i int) float64 {
		return pet[name] // the signature's prediction
	}), clusterCores, pas2p.BackfillShortest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nqueue of 60 jobs on %d cores (EASY + shortest-job backfill):\n", clusterCores)
	fmt.Printf("%-22s %-12s %-12s %-12s %s\n", "estimates", "avg wait", "slowdown", "utilization", "promise err")
	fmt.Printf("%-22s %-12.1f %-12.2f %-12.2f %.1fs\n", "user (2x-8x padded)",
		withUsers.AvgWaitSeconds, withUsers.AvgBoundedSlowdown, withUsers.Utilization, withUsers.AvgPromiseErrorSeconds)
	fmt.Printf("%-22s %-12.1f %-12.2f %-12.2f %.1fs\n", "PAS2P signatures",
		withPAS2P.AvgWaitSeconds, withPAS2P.AvgBoundedSlowdown, withPAS2P.Utilization, withPAS2P.AvgPromiseErrorSeconds)
	fmt.Println("\nWith signature estimates the scheduler's beliefs about when cores free")
	fmt.Println("up match reality, so queue plans and reservations can be trusted —")
	fmt.Println("the use the paper's introduction proposes for the signature metadata.")
}

func secondsToDur(s float64) pas2p.VDuration {
	return pas2p.VDuration(s * 1e9)
}
