package main

import (
	"fmt"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
	"pas2p/internal/sigrepo"
)

// cmdRepo manages a site-wide signature repository: the "performance
// metadata" store §1 of the paper proposes for schedulers.
//
//	pas2p repo -dir D add  -app A -procs N [-workload W] [-base B] [-verify]
//	pas2p repo -dir D list
//	pas2p repo -dir D predict -app A -procs N [-workload W] -target T [-cores K]
//	pas2p repo -dir D fsck
func cmdRepo(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("repo: need a subcommand (add, list, predict, fsck)")
	}
	// The -dir flag may come before or after the subcommand; accept
	// the common form `repo <sub> -dir ...`.
	sub := args[0]
	rest := args[1:]
	fs := newFlagSet("repo " + sub)
	dir := fs.String("dir", "pas2p-repo", "repository directory")
	app := fs.String("app", "", "application name")
	procs := fs.Int("procs", 64, "number of processes")
	workload := fs.String("workload", "", "workload name")
	base := fs.String("base", "A", "base cluster (for add)")
	target := fs.String("target", "B", "target cluster (for predict)")
	cores := fs.Int("cores", 0, "restrict the target to this many cores")
	verify := fs.Bool("verify", false, "after add, re-read the entry and verify its checksums")
	keepTrace := fs.Bool("keep-trace", false, "also store the traced run's tracefile in the repository (for add)")
	if err := parseArgs(fs, rest); err != nil {
		return err
	}
	repo, err := sigrepo.Open(*dir)
	if err != nil {
		return err
	}

	switch sub {
	case "add":
		if *app == "" {
			return fmt.Errorf("repo add: -app is required")
		}
		a, err := apps.Make(*app, *procs, *workload)
		if err != nil {
			return err
		}
		wl := *workload
		if wl == "" {
			wl = apps.Lookup(*app).DefaultWorkload
		}
		bd, err := deployFor(*base, 0, *procs)
		if err != nil {
			return err
		}
		traced, err := mpi.Run(a, mpi.RunConfig{Deployment: bd, Trace: true})
		if err != nil {
			return err
		}
		l, err := logical.Order(traced.Trace)
		if err != nil {
			return err
		}
		an, err := phase.Extract(l, phase.DefaultConfig())
		if err != nil {
			return err
		}
		tb, err := an.BuildTable(1)
		if err != nil {
			return err
		}
		br, err := signature.Build(a, tb, bd, signature.DefaultOptions())
		if err != nil {
			return err
		}
		path, err := repo.Add(br.Signature, wl, bd.Cluster.Name)
		if err != nil {
			return err
		}
		fmt.Printf("added %s (%d relevant phases, SCT %.2fs) -> %s\n",
			*app, len(tb.RelevantRows()), br.SCT.Seconds(), path)
		if *keepTrace {
			tpath, err := repo.AddTrace(traced.Trace, wl)
			if err != nil {
				return err
			}
			fmt.Printf("stored tracefile (%d events) -> %s\n", len(traced.Trace.Events), tpath)
		}
		if *verify {
			if _, err := repo.Lookup(*app, *procs, wl); err != nil {
				return fmt.Errorf("repo add -verify: %w", err)
			}
			if *keepTrace {
				// Streaming verification: every block CRC and the file
				// CRC are checked without materialising the events.
				if _, err := repo.LookupTrace(*app, *procs, wl); err != nil {
					return fmt.Errorf("repo add -verify: %w", err)
				}
			}
			fmt.Println("verified: entry re-read and checksums hold")
		}
		return nil

	case "list":
		entries, problems, err := repo.List()
		if err != nil {
			return err
		}
		traces, tProblems, err := repo.ListTraces()
		if err != nil {
			return err
		}
		// Manifest-level problems surface from both scans identically;
		// report each once.
		seen := make(map[string]bool, len(problems))
		for _, p := range problems {
			seen[p.String()] = true
		}
		for _, p := range tProblems {
			if !seen[p.String()] {
				problems = append(problems, p)
			}
		}
		if len(entries) == 0 && len(traces) == 0 && len(problems) == 0 {
			fmt.Println("repository is empty")
			return nil
		}
		if len(entries) > 0 {
			fmt.Printf("%-14s %-7s %-24s %-12s %-8s %s\n",
				"APP", "PROCS", "WORKLOAD", "BUILT ON", "ISA", "PHASES")
			for _, e := range entries {
				fmt.Printf("%-14s %-7d %-24s %-12s %-8s %d/%d relevant\n",
					e.Saved.AppName, e.Saved.Procs, e.Saved.Workload,
					e.Saved.BaseCluster, e.Saved.BaseISA,
					len(e.Saved.Table.RelevantRows()), e.Saved.Table.TotalPhases)
			}
		}
		if len(traces) > 0 {
			fmt.Printf("\n%-14s %-7s %-24s %-12s %s\n",
				"TRACE", "PROCS", "WORKLOAD", "EVENTS", "AET")
			for _, te := range traces {
				fmt.Printf("%-14s %-7d %-24s %-12d %.2fs\n",
					te.Meta.AppName, te.Meta.Procs, te.Workload,
					te.Meta.Events, te.Meta.AET.Seconds())
			}
		}
		for _, p := range problems {
			fmt.Printf("problem: %s\n", p)
		}
		if len(problems) > 0 {
			fmt.Println("run `pas2p repo fsck` to quarantine corrupt entries and rebuild the manifest")
		}
		return nil

	case "fsck":
		rep, err := repo.Fsck()
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil

	case "predict":
		if *app == "" {
			return fmt.Errorf("repo predict: -app is required")
		}
		wl := *workload
		if wl == "" {
			if s := apps.Lookup(*app); s != nil {
				wl = s.DefaultWorkload
			}
		}
		entry, err := repo.Lookup(*app, *procs, wl)
		if err != nil {
			return err
		}
		td, err := deployFor(*target, *cores, *procs)
		if err != nil {
			return err
		}
		res, err := entry.Predict(td, apps.Make)
		if err != nil {
			return err
		}
		fmt.Printf("%s/p%d/%q on %s: SET %.2fs, PET %.2fs\n",
			*app, *procs, wl, td, res.SET.Seconds(), res.PET.Seconds())
		return nil

	default:
		return fmt.Errorf("repo: unknown subcommand %q (add, list, predict, fsck)", sub)
	}
}
