package main

import (
	"fmt"
	"io"
	"os"

	"pas2p/internal/apps"
	"pas2p/internal/fsx"
	"pas2p/internal/logical"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
)

// cmdSign runs PAS2P stage A end to end and persists the signature:
// instrument on the base cluster, model, extract phases, construct the
// checkpoints, and write the signature file a later 'execsig' carries
// to target machines.
func cmdSign(args []string) error {
	fs := newFlagSet("sign")
	app := fs.String("app", "", "application name")
	procs := fs.Int("procs", 64, "number of processes")
	workload := fs.String("workload", "", "workload name")
	base := fs.String("base", "A", "base cluster")
	out := fs.String("o", "", "output signature file (default <app>.sig.json)")
	allPhases := fs.Bool("all-phases", false, "capture every phase, not only relevant ones")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("sign: -app is required")
	}
	a, err := apps.Make(*app, *procs, *workload)
	if err != nil {
		return err
	}
	bd, err := deployFor(*base, 0, *procs)
	if err != nil {
		return err
	}
	traced, err := mpi.Run(a, mpi.RunConfig{Deployment: bd, Trace: true})
	if err != nil {
		return err
	}
	l, err := logical.Order(traced.Trace)
	if err != nil {
		return err
	}
	an, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		return err
	}
	tb, err := an.BuildTable(1)
	if err != nil {
		return err
	}
	opts := signature.DefaultOptions()
	opts.AllPhases = *allPhases
	br, err := signature.Build(a, tb, bd, opts)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *app + ".sig.json"
	}
	err = fsx.WriteFileAtomic(fsx.OS{}, path, func(w io.Writer) error {
		return br.Signature.Save(w, *workload, bd.Cluster.Name)
	})
	if err != nil {
		return err
	}
	fmt.Printf("analysed %s on %s: %d phases, %d relevant\n",
		*app, bd.Cluster.Name, tb.TotalPhases, len(tb.RelevantRows()))
	fmt.Printf("signature constructed: %d checkpoints, SCT %.2fs (virtual)\n",
		br.Checkpoints, br.SCT.Seconds())
	fmt.Printf("written to %s\n", path)
	return nil
}

// cmdExecSig executes a persisted signature on a target machine and
// prints the prediction (with ground truth unless -no-ground-truth).
func cmdExecSig(args []string) error {
	fs := newFlagSet("execsig")
	in := fs.String("sig", "", "signature file from 'pas2p sign'")
	target := fs.String("target", "B", "target cluster")
	cores := fs.Int("cores", 0, "restrict the target to this many cores")
	noTruth := fs.Bool("no-ground-truth", false, "skip the full target run")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("execsig: -sig is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	saved, err := signature.LoadSaved(f)
	if err != nil {
		return err
	}
	a, err := apps.Make(saved.AppName, saved.Procs, saved.Workload)
	if err != nil {
		return err
	}
	sig, err := saved.Reassemble(a)
	if err != nil {
		return err
	}
	td, err := deployFor(*target, *cores, saved.Procs)
	if err != nil {
		return err
	}
	res, err := sig.Execute(td)
	if err != nil {
		return err
	}
	fmt.Printf("signature  : %s (%d procs, workload %q, built on %s for ISA %s)\n",
		saved.AppName, saved.Procs, saved.Workload, saved.BaseCluster, saved.BaseISA)
	fmt.Printf("target     : %s\n", td)
	fmt.Printf("SET        : %.2fs\n", res.SET.Seconds())
	fmt.Printf("PET (Eq.1) : %.2fs\n", res.PET.Seconds())
	if !*noTruth {
		full, err := mpi.Run(a, mpi.RunConfig{Deployment: td})
		if err != nil {
			return err
		}
		aet := full.Elapsed.Seconds()
		pet := res.PET.Seconds()
		pete := 100 * abs(pet-aet) / aet
		fmt.Printf("AET        : %.2fs  ->  PETE %.2f%% (SET is %.2f%% of AET)\n",
			aet, pete, 100*res.SET.Seconds()/aet)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
