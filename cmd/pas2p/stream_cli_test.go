package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pas2p/internal/workload"
)

// TestAnalyzeStreamCLI drives `analyze -stream` end to end over a
// synthetic v2 tracefile and requires the emitted phase-table JSON to
// be byte-identical to the in-core run's.
func TestAnalyzeStreamCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "synth.pas2p")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Synthesize(f, workload.SynthSpec{Procs: 4, TargetEvents: 8_000, Seed: 9}); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	inCore := filepath.Join(dir, "incore.json")
	streamed := filepath.Join(dir, "streamed.json")
	if err := cmdAnalyze([]string{"-trace", path, "-o", inCore}); err != nil {
		t.Fatalf("analyze (in-core): %v", err)
	}
	// A 1-byte budget forces every phase matrix through the spill path.
	if err := cmdAnalyze([]string{"-trace", path, "-stream", "-mem-budget", "1B", "-o", streamed}); err != nil {
		t.Fatalf("analyze -stream: %v", err)
	}
	a, err := os.ReadFile(inCore)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed phase table differs from in-core:\n%s\n---\n%s", a, b)
	}
}

// TestAnalyzeStreamFlagGuards: options that require the in-core trace
// must be rejected with -stream rather than silently ignored.
func TestAnalyzeStreamFlagGuards(t *testing.T) {
	for _, args := range [][]string{
		{"-trace", "f", "-stream", "-explain"},
		{"-trace", "f", "-stream", "-faults", "skew=1ms"},
		{"-trace", "f", "-stream", "-timeline", "t.json"},
	} {
		if err := cmdAnalyze(args); err == nil {
			t.Errorf("%v: want incompatibility error, got nil", args)
		}
	}
	if err := cmdAnalyze([]string{"-trace", "missing", "-stream", "-mem-budget", "wat"}); err == nil {
		t.Error("bogus -mem-budget accepted")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"1KiB", 1 << 10},
		{"64MiB", 64 << 20},
		{"2GiB", 2 << 30},
		{"1KB", 1_000},
		{"5MB", 5_000_000},
		{"3GB", 3_000_000_000},
		{"2K", 2 << 10},
		{"1M", 1 << 20},
		{"1G", 1 << 30},
		{"512B", 512},
		{" 16 MiB ", 16 << 20},
		{"1.5KiB", 1536},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "-1", "wat", "1XiB", "KiB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q): want error, got nil", bad)
		}
	}
}
