package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCLIRoundTrip: validate then run a small suite through
// the real subcommand, with JSON and JUnit artifacts landing on disk,
// and a violated bound turning into a non-zero campaign error that
// names the failure count.
func TestScenarioCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	good := `name: cli-smoke
app:
  name: masterworker
  ranks: 8
base: A
target: B
assert:
  pete_bound: 5.0
  phases_min: 1
`
	if err := os.WriteFile(filepath.Join(dir, "smoke.yaml"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdScenario([]string{"validate", dir}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	jsonPath := filepath.Join(dir, "out", "results.json")
	junitPath := filepath.Join(dir, "out", "results.xml")
	if err := os.MkdirAll(filepath.Dir(jsonPath), 0o755); err != nil {
		t.Fatal(err)
	}
	err := cmdScenario([]string{"run", dir,
		"-workers", "1", "-json", jsonPath, "-junit", junitPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{jsonPath, junitPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if !strings.Contains(string(data), "cli-smoke") {
			t.Errorf("%s does not mention the scenario", p)
		}
	}

	// A misspelled assertion key fails validation with a position.
	typo := strings.Replace(good, "name: cli-smoke", "name: cli-typo", 1)
	typo = strings.Replace(typo, "pete_bound:", "pete_boundd:", 1)
	if err := os.WriteFile(filepath.Join(dir, "typo.yaml"), []byte(typo), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdScenario([]string{"validate", dir})
	if err == nil || !strings.Contains(err.Error(), "pete_boundd") {
		t.Fatalf("typo not rejected: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, "typo.yaml")); err != nil {
		t.Fatal(err)
	}

	// A violated bound exits the run path with a failure count.
	tight := strings.Replace(good, "name: cli-smoke", "name: cli-tight", 1)
	tight = strings.Replace(tight, "phases_min: 1", "phases_min: 99", 1)
	if err := os.WriteFile(filepath.Join(dir, "tight.yaml"), []byte(tight), 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdScenario([]string{"run", dir, "-workers", "1"})
	if err == nil || !strings.Contains(err.Error(), "cases failed") {
		t.Fatalf("violated campaign did not fail: %v", err)
	}
}
