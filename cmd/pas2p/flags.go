package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// cliErrOut receives usage output on parse failures; tests redirect it.
var cliErrOut io.Writer = os.Stderr

// newFlagSet builds a subcommand flag set that reports errors instead
// of exiting the process, so main prints exactly one message and tests
// can assert on parse failures.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard) // parseArgs prints usage once, on cliErrOut
	return fs
}

// parseArgs parses a subcommand's arguments, printing usage and
// returning an error on unknown flags, on -h (flag.ErrHelp), and on
// trailing positional arguments — which flag.Parse otherwise silently
// ignores.
func parseArgs(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err != nil {
		fs.SetOutput(cliErrOut)
		fs.Usage()
		if err == flag.ErrHelp {
			return err
		}
		return fmt.Errorf("%s: %v", fs.Name(), err)
	}
	if fs.NArg() > 0 {
		fs.SetOutput(cliErrOut)
		fs.Usage()
		return fmt.Errorf("%s: unexpected argument %q", fs.Name(), fs.Arg(0))
	}
	return nil
}
