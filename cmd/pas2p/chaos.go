package main

import (
	"fmt"

	"pas2p/internal/apps"
	"pas2p/internal/faults"
	"pas2p/internal/obs"
	"pas2p/internal/predict"
	"pas2p/internal/vtime"
)

// defaultChaosSpec exercises every fault class at gentle rates.
const defaultChaosSpec = "loss=0.02,dup=0.01,delay=0.05,crash=0.05,jitter=0.005"

// cmdChaos runs the prediction pipeline under deterministic fault
// injection: seeded message loss/duplication/delay, restart crashes
// with bounded retries, and clock jitter. The prediction degrades
// gracefully when a phase is lost to an unrecovered crash, and — since
// every fault decision is a pure function of the seed — a second run
// with the same seed must reproduce the identical fault schedule and
// prediction, which -verify (on by default) checks in-process.
func cmdChaos(args []string) error {
	// Accept the app as a positional argument: pas2p chaos cg -seed 7.
	var app string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		app, args = args[0], args[1:]
	}
	fs := newFlagSet("chaos")
	ranks := fs.Int("ranks", 16, "number of processes")
	workload := fs.String("workload", "", "workload name (default: app's default)")
	base := fs.String("base", "A", "base cluster (signature construction)")
	target := fs.String("target", "B", "target cluster (prediction)")
	cores := fs.Int("cores", 0, "restrict the target to this many cores")
	seed := fs.Int64("seed", 1, "fault schedule seed (same seed -> identical faults and prediction)")
	spec := fs.String("faults", defaultChaosSpec,
		"fault spec: key=value list (loss, dup, delay[:MAX], crash, attempts, jitter, skew, drift, rto, retrans, backoff)")
	verify := fs.Bool("verify", true, "re-run with the same seed and check the outcome is identical")
	noTruth := fs.Bool("no-ground-truth", false, "skip the fault-free full target run")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot (incl. faults.* counters) as JSON")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline with fault instants on the rank tracks")
	serve := fs.String("serve", "", "serve live telemetry during the run, e.g. 127.0.0.1:9090 (port 0 picks one); /flight lists each injected fault")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if app == "" {
		return fmt.Errorf("chaos: usage: pas2p chaos <app> [-seed S] [-faults SPEC] ...")
	}
	if *spec == "" {
		return fmt.Errorf("chaos: -faults must name at least one fault class")
	}
	if _, err := faults.ParseSpec(*seed, *spec); err != nil {
		return err
	}
	a, err := apps.Make(app, *ranks, *workload)
	if err != nil {
		return err
	}
	bd, err := deployFor(*base, 0, *ranks)
	if err != nil {
		return err
	}
	td, err := deployFor(*target, *cores, *ranks)
	if err != nil {
		return err
	}

	// Each run gets a fresh injector from the same (seed, spec), so the
	// verification run sees the exact schedule the first run saw.
	run := func(o *obs.Observer) (*predict.Outcome, faults.Report, error) {
		inj, err := faults.ParseSpec(*seed, *spec)
		if err != nil {
			return nil, faults.Report{}, err
		}
		out, err := predict.Run(predict.Experiment{
			App: a, Base: bd, Target: td,
			EventOverhead: 8 * vtime.Microsecond,
			SkipTargetAET: *noTruth,
			Observer:      o,
			Faults:        inj,
		})
		if err != nil {
			return nil, faults.Report{}, err
		}
		return out, inj.Report(), nil
	}

	var o *obs.Observer
	switch {
	case *timelineOut != "":
		o = obs.NewWithTimeline()
	case *metricsOut != "" || *serve != "":
		o = obs.New()
	}
	stopServe, err := startServe(*serve, o)
	if err != nil {
		return err
	}
	defer stopServe()
	out, rep, err := run(o)
	if err != nil {
		return err
	}

	fmt.Printf("application : %s (%d processes, workload %q)\n", app, *ranks, *workload)
	fmt.Printf("base machine: %s\n", bd)
	fmt.Printf("target      : %s\n", td)
	fmt.Printf("analysis    : %d phases, %d relevant\n", out.Total, out.Relevant)
	fmt.Printf("signature   : SET %.2fs\n", out.SET.Seconds())
	fmt.Printf("prediction  : PET %.2fs\n", out.PET.Seconds())
	if !*noTruth {
		fmt.Printf("ground truth: AET %.2fs (fault-free)  ->  PETE %.2f%%\n",
			out.AETTarget.Seconds(), out.PETEPercent)
	}
	fmt.Println(rep)
	if out.Degraded {
		fmt.Printf("DEGRADED: phases %v lost to unrecovered crashes; PET covers the surviving phases only\n",
			out.LostPhases)
	}

	if *verify {
		out2, rep2, err := run(nil)
		if err != nil {
			return fmt.Errorf("chaos: verification run: %w", err)
		}
		if out2.PET != out.PET || out2.SET != out.SET || rep2 != rep {
			return fmt.Errorf("chaos: seed %d did NOT reproduce: PET %v vs %v, SET %v vs %v, faults %+v vs %+v",
				*seed, out.PET, out2.PET, out.SET, out2.SET, rep, rep2)
		}
		fmt.Printf("determinism : verified — seed %d reproduces the identical fault schedule and prediction\n", *seed)
	}

	if o != nil {
		snap := o.Registry.Snapshot()
		snap.AddPipelineTrack(o.Timeline, "pipeline (wall clock)")
		if err := writeSnapshot(snap, *metricsOut, ""); err != nil {
			return err
		}
		if *metricsOut != "" {
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
		if *timelineOut != "" {
			if err := writeTimeline(o.Timeline, *timelineOut); err != nil {
				return err
			}
			fmt.Printf("timeline written to %s (%d events; open in Perfetto)\n",
				*timelineOut, o.Timeline.Len())
		}
	}
	return nil
}
