package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRejectBadArgs drives every subcommand through its flag parser
// with malformed input. Unknown flags and trailing positional
// arguments — which flag.Parse silently ignores — must both produce an
// error naming the subcommand, and -h must surface flag.ErrHelp so
// main can exit 0.
func TestRejectBadArgs(t *testing.T) {
	cases := []struct {
		name string
		cmd  func([]string) error
		args []string
		want string // substring of the returned error
	}{
		{"apps/unknown-flag", cmdApps, []string{"-bogus"}, "not defined"},
		{"apps/trailing", cmdApps, []string{"extra"}, "unexpected argument"},
		{"clusters/trailing", cmdClusters, []string{"junk"}, "unexpected argument"},
		{"trace/trailing", cmdTrace, []string{"-app", "cg", "junk"}, "unexpected argument"},
		{"trace/unknown-flag", cmdTrace, []string{"-nope"}, "not defined"},
		{"analyze/trailing", cmdAnalyze, []string{"-trace", "f", "junk"}, "unexpected argument"},
		{"analyze/bad-faults", cmdAnalyze, []string{"-trace", "f", "-faults", "bogus=1"}, "unknown key"},
		{"inspect/unknown-flag", cmdInspect, []string{"-bogus"}, "not defined"},
		{"render/unknown-flag", cmdRender, []string{"-bogus"}, "not defined"},
		{"aet/unknown-flag", cmdAET, []string{"-nope"}, "not defined"},
		{"predict/trailing", cmdPredict, []string{"-app", "cg", "zzz"}, "unexpected argument"},
		{"predict/bad-faults", cmdPredict, []string{"-app", "cg", "-faults", "loss=2"}, "loss"},
		{"profile/trailing", cmdProfile, []string{"cg", "-ranks", "4", "zzz"}, "unexpected argument"},
		{"chaos/unknown-flag", cmdChaos, []string{"cg", "-bogus"}, "not defined"},
		{"chaos/bad-faults", cmdChaos, []string{"cg", "-faults", "bogus=1"}, "unknown key"},
		{"chaos/no-app", cmdChaos, []string{"-seed", "3"}, "usage"},
		{"chaos/empty-faults", cmdChaos, []string{"cg", "-faults", ""}, "fault class"},
		{"sign/unknown-flag", cmdSign, []string{"-x"}, "not defined"},
		{"execsig/unknown-flag", cmdExecSig, []string{"-wat"}, "not defined"},
		{"repo/trailing", cmdRepo, []string{"list", "extra"}, "unexpected argument"},
		{"repo/unknown-sub", cmdRepo, []string{"frobnicate"}, "unknown subcommand"},
		{"repo/fsck-trailing", cmdRepo, []string{"fsck", "extra"}, "unexpected argument"},
		{"scenario/no-verb", cmdScenario, nil, "usage"},
		{"scenario/unknown-verb", cmdScenario, []string{"frobnicate"}, "unknown action"},
		{"scenario/run-no-path", cmdScenario, []string{"run"}, "usage"},
		{"scenario/run-unknown-flag", cmdScenario, []string{"run", "dir", "-bogus"}, "not defined"},
		{"scenario/validate-trailing", cmdScenario, []string{"validate", "dir", "extra"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			old := cliErrOut
			cliErrOut = &buf
			defer func() { cliErrOut = old }()

			err := tc.cmd(tc.args)
			if err == nil {
				t.Fatalf("%v: want error containing %q, got nil", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%v: error %q does not contain %q", tc.args, err, tc.want)
			}
			if errors.Is(err, flag.ErrHelp) {
				t.Fatalf("%v: parse failure must not be ErrHelp", tc.args)
			}
		})
	}
}

// TestRepoCLIAddVerifyFsck drives the repository subcommands end to
// end: add -verify stores and re-checks an entry, a corrupted file is
// survived by list and repaired by fsck, and predict serves the
// surviving entry afterwards.
func TestRepoCLIAddVerifyFsck(t *testing.T) {
	dir := t.TempDir()
	if err := cmdRepo([]string{"add", "-dir", dir, "-app", "cg", "-procs", "8", "-workload", "classA", "-verify"}); err != nil {
		t.Fatalf("repo add -verify: %v", err)
	}
	if err := cmdRepo([]string{"add", "-dir", dir, "-app", "ep", "-procs", "8", "-workload", "classA", "-verify"}); err != nil {
		t.Fatalf("repo add -verify: %v", err)
	}

	// Corrupt one stored entry behind the CLI's back.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ep_") && strings.HasSuffix(e.Name(), ".sig.json") {
			victim = filepath.Join(dir, e.Name())
		}
	}
	if victim == "" {
		t.Fatal("stored ep entry not found")
	}
	if err := os.WriteFile(victim, []byte(`{"formatVersion":2,"payloadSHA256":"00","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// list must survive the corruption, fsck must repair it.
	if err := cmdRepo([]string{"list", "-dir", dir}); err != nil {
		t.Fatalf("repo list over corrupt entry: %v", err)
	}
	if err := cmdRepo([]string{"fsck", "-dir", dir}); err != nil {
		t.Fatalf("repo fsck: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Error("fsck left the corrupt entry in place")
	}
	if err := cmdRepo([]string{"predict", "-dir", dir, "-app", "cg", "-procs", "8", "-workload", "classA", "-target", "B"}); err != nil {
		t.Fatalf("repo predict after fsck: %v", err)
	}
}

// TestHelpFlag checks -h produces usage text and the sentinel error.
func TestHelpFlag(t *testing.T) {
	for _, tc := range []struct {
		name string
		cmd  func([]string) error
		args []string
	}{
		{"predict", cmdPredict, []string{"-h"}},
		{"chaos", cmdChaos, []string{"cg", "-h"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			old := cliErrOut
			cliErrOut = &buf
			defer func() { cliErrOut = old }()

			if err := tc.cmd(tc.args); !errors.Is(err, flag.ErrHelp) {
				t.Fatalf("-h: want flag.ErrHelp, got %v", err)
			}
			if !strings.Contains(buf.String(), "Usage of") {
				t.Fatalf("-h printed no usage text: %q", buf.String())
			}
		})
	}
}

// TestUsagePrintedOnce asserts a parse failure writes the usage text to
// cliErrOut exactly once (the flag package's own copy goes to Discard).
func TestUsagePrintedOnce(t *testing.T) {
	var buf bytes.Buffer
	old := cliErrOut
	cliErrOut = &buf
	defer func() { cliErrOut = old }()

	if err := cmdPredict([]string{"-bogus"}); err == nil {
		t.Fatal("want parse error")
	}
	if n := strings.Count(buf.String(), "Usage of"); n != 1 {
		t.Fatalf("usage printed %d times, want 1:\n%s", n, buf.String())
	}
}
