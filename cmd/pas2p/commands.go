package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pas2p/internal/apps"
	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/predict"
	"pas2p/internal/report"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

func cmdApps(args []string) error {
	fs := newFlagSet("apps")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	fmt.Printf("%-14s %-18s %s\n", "APP", "DEFAULT WORKLOAD", "WORKLOADS")
	for _, n := range apps.Names() {
		s := apps.Lookup(n)
		fmt.Printf("%-14s %-18s %s\n", n, s.DefaultWorkload, strings.Join(s.Workloads, ", "))
	}
	return nil
}

func cmdClusters(args []string) error {
	fs := newFlagSet("clusters")
	export := fs.String("export", "", "write the named preset as JSON to stdout (template for custom clusters)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *export != "" {
		cl := machine.ByName(*export)
		if cl == nil {
			return fmt.Errorf("unknown cluster %q", *export)
		}
		return machine.SaveCluster(os.Stdout, cl)
	}
	report.Table2(os.Stdout)
	return nil
}

// deployFor resolves -cluster/-cores into a deployment for n ranks. A
// cluster name starting with '@' loads a custom JSON model instead of
// a Table 2 preset (derive one with 'pas2p clusters -export A').
func deployFor(clusterName string, cores, ranks int) (*machine.Deployment, error) {
	var cl *machine.Cluster
	if strings.HasPrefix(clusterName, "@") {
		f, err := os.Open(strings.TrimPrefix(clusterName, "@"))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cl, err = machine.LoadCluster(f)
		if err != nil {
			return nil, err
		}
	} else {
		cl = machine.ByName(clusterName)
	}
	if cl == nil {
		return nil, fmt.Errorf("unknown cluster %q (use A, B, C, D or @file.json)", clusterName)
	}
	if cores > 0 {
		nodes := (cores + cl.CoresPerNode - 1) / cl.CoresPerNode
		if nodes < 1 {
			nodes = 1
		}
		cl.Nodes = nodes
	}
	return machine.NewDeployment(cl, ranks, machine.MapBlock)
}

func cmdTrace(args []string) error {
	fs := newFlagSet("trace")
	app := fs.String("app", "", "application name (see 'pas2p apps')")
	procs := fs.Int("procs", 64, "number of processes")
	workload := fs.String("workload", "", "workload name (default: app's default)")
	cluster := fs.String("cluster", "A", "base cluster (A..D)")
	out := fs.String("o", "", "output tracefile (default <app>.pas2p)")
	asJSON := fs.Bool("json", false, "write JSON instead of the binary format")
	compress := fs.Bool("z", false, "write the compressed tracefile format")
	parallel := fs.Int("parallel", 0, "codec workers for encode/compress (0 = all CPUs, 1 = serial; output is byte-identical)")
	overhead := fs.Duration("overhead", 0, "per-event instrumentation overhead (virtual), e.g. 8us")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("trace: -app is required")
	}
	a, err := apps.Make(*app, *procs, *workload)
	if err != nil {
		return err
	}
	d, err := deployFor(*cluster, 0, *procs)
	if err != nil {
		return err
	}
	res, err := mpi.Run(a, mpi.RunConfig{
		Deployment: d, Trace: true,
		EventOverhead: vtime.FromSeconds(overhead.Seconds()),
	})
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *app + ".pas2p"
	}
	err = fsx.WriteFileAtomic(fsx.OS{}, path, func(w io.Writer) error {
		switch {
		case *asJSON:
			return trace.EncodeJSON(w, res.Trace)
		case *compress:
			return trace.CompressWith(w, res.Trace, trace.CompressOptions{Workers: *parallel})
		default:
			return trace.EncodeWith(w, res.Trace, trace.CodecOptions{Workers: *parallel})
		}
	})
	if err != nil {
		return err
	}
	st := res.Trace.Stats()
	fmt.Printf("traced %s on %s: %d events (%d sends, %d recvs, %d collectives)\n",
		*app, d, st.Events, st.Sends, st.Recvs, st.Collectives)
	fmt.Printf("virtual AET (instrumented): %.2fs\n", res.Elapsed.Seconds())
	fmt.Printf("tracefile: %s (%d bytes)\n", path, trace.EncodedSize(res.Trace))
	return nil
}

func cmdAnalyze(args []string) error {
	fs := newFlagSet("analyze")
	in := fs.String("trace", "", "input tracefile")
	out := fs.String("o", "", "write the phase table as JSON to this path")
	warm := fs.Int("warm", 1, "occurrence designated for checkpointing")
	explain := fs.Bool("explain", false, "narrate the extraction algorithm's steps (paper Fig. 6)")
	eventSim := fs.Float64("event-similarity", 0.80, "fraction of similar events required")
	compSim := fs.Float64("compute-similarity", 0.85, "compute-time similarity ratio")
	relevance := fs.Float64("relevance", 0.01, "relevant-phase AET fraction")
	par := fs.Bool("parallel", false, "fan phase extraction out over the CPUs (tracefile decode is always parallel; see 'trace -parallel')")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot (stage spans, counters) as JSON")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline of the tracefile")
	promOut := fs.String("prom", "", "also write the metrics in Prometheus text format")
	faultSpec := fs.String("faults", "", "perturb the trace's clocks before analysis, e.g. skew=5ms,drift=0.001")
	seed := fs.Int64("seed", 1, "fault-injection seed (with -faults)")
	serve := fs.String("serve", "", "serve live telemetry on this address while analyzing, e.g. 127.0.0.1:9090 (port 0 picks one)")
	stream := fs.Bool("stream", false, "analyze out-of-core: stream the tracefile without decoding it into memory (v2 binary tracefiles only)")
	memBudget := fs.String("mem-budget", "256MiB", "with -stream: resident-memory budget for phase matrices, e.g. 64MiB, 1GiB (0 = unlimited)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("analyze: -trace is required")
	}
	if *stream {
		for name, set := range map[string]bool{
			"-explain": *explain, "-faults": *faultSpec != "", "-timeline": *timelineOut != "",
		} {
			if set {
				return fmt.Errorf("analyze: %s needs the in-core trace and is incompatible with -stream", name)
			}
		}
	}
	inj, err := faults.ParseSpec(*seed, *faultSpec)
	if err != nil {
		return err
	}
	var o *obs.Observer
	switch {
	case *timelineOut != "":
		o = obs.NewWithTimeline()
	case *metricsOut != "" || *promOut != "" || *serve != "":
		o = obs.New()
	}
	inj.SetObserver(o)
	stopServe, err := startServe(*serve, o)
	if err != nil {
		return err
	}
	defer stopServe()
	cfg := phase.DefaultConfig()
	cfg.EventSimilarity = *eventSim
	cfg.ComputeSimilarity = *compSim
	cfg.RelevanceFraction = *relevance
	cfg.ExtractParallel = *par
	cfg.Observer = o
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	if *stream {
		if err := analyzeStreamFile(f, *out, *warm, *memBudget, cfg); err != nil {
			return err
		}
		if o != nil {
			if err := writeSnapshot(o.Registry.Snapshot(), *metricsOut, *promOut); err != nil {
				return err
			}
			if *metricsOut != "" {
				fmt.Printf("metrics written to %s\n", *metricsOut)
			}
			if *promOut != "" {
				fmt.Printf("prometheus metrics written to %s\n", *promOut)
			}
		}
		return nil
	}
	tr, err := trace.DecodeAnyWith(f, trace.CodecOptions{Reg: o.Reg()})
	if err != nil {
		return err
	}
	if *faultSpec != "" {
		// Clock skew/drift tests the machine-independence of the
		// logical ordering: the phases extracted from a skewed trace
		// should match the clean trace's.
		skewed, err := inj.SkewTrace(tr)
		if err != nil {
			return fmt.Errorf("analyze: skewing trace: %w", err)
		}
		if rep := inj.Report(); rep.ProcsSkewed > 0 {
			fmt.Printf("injected clock skew into %d processes (seed %d)\n",
				rep.ProcsSkewed, *seed)
		}
		tr = skewed
		inj.Publish(o.Reg())
	}
	sp := o.StartSpan("analyze.order")
	l, err := logical.Order(tr)
	if err != nil {
		sp.End()
		return err
	}
	sp.SetCounter("events", int64(len(tr.Events)))
	sp.SetCounter("ticks", int64(l.NumTicks()))
	sp.End()
	var logf func(string, ...any)
	if *explain {
		logf = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}
	an, err := phase.ExtractWithLog(l, cfg, logf)
	if err != nil {
		return err
	}
	sp = o.StartSpan("analyze.table")
	tb, err := an.BuildTable(*warm)
	if err != nil {
		sp.End()
		return err
	}
	sp.SetCounter("relevant_phases", int64(len(tb.RelevantRows())))
	sp.End()
	fmt.Printf("application: %s, %d processes, %d events, %d ticks\n",
		tr.AppName, tr.Procs, len(tr.Events), l.NumTicks())
	fmt.Println(an.Summary())
	tb.Print(os.Stdout)
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer g.Close()
		enc := json.NewEncoder(g)
		enc.SetIndent("", " ")
		if err := enc.Encode(tb); err != nil {
			return err
		}
		fmt.Printf("phase table written to %s\n", *out)
	}
	if *timelineOut != "" {
		pid := timelineFromTrace(o.Timeline, tr)
		addPhaseBoundaries(o.Timeline, pid, an)
	}
	if o != nil {
		snap := o.Registry.Snapshot()
		snap.AddPipelineTrack(o.Timeline, "pipeline (wall clock)")
		if err := writeSnapshot(snap, *metricsOut, *promOut); err != nil {
			return err
		}
		if *metricsOut != "" {
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
		if *promOut != "" {
			fmt.Printf("prometheus metrics written to %s\n", *promOut)
		}
		if *timelineOut != "" {
			if err := writeTimeline(o.Timeline, *timelineOut); err != nil {
				return err
			}
			fmt.Printf("timeline written to %s (%d events; open in Perfetto)\n",
				*timelineOut, o.Timeline.Len())
		}
	}
	return nil
}

// analyzeStreamFile runs the out-of-core pipeline over an open v2
// tracefile: rank streams, streaming logical order, incremental phase
// extraction with a spill budget. Memory stays bounded regardless of
// trace size.
func analyzeStreamFile(f *os.File, outPath string, warm int, budgetStr string, cfg phase.Config) error {
	budget, err := parseBytes(budgetStr)
	if err != nil {
		return fmt.Errorf("analyze: -mem-budget: %w", err)
	}
	br, err := trace.NewBlockReader(f)
	if err != nil {
		return err
	}
	rs, err := br.RankStreams()
	if err != nil {
		return err
	}
	tick, err := logical.StreamOrder(rs)
	if err != nil {
		return err
	}
	var spillDir string
	if budget > 0 {
		spillDir, err = os.MkdirTemp("", "pas2p-spill-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spillDir)
	}
	res, err := phase.ExtractStreamTable(context.Background(), tick, tick.Meta(), warm,
		phase.StreamConfig{Config: cfg, MemBudgetBytes: budget, SpillDir: spillDir})
	if err != nil {
		return err
	}
	defer res.Close()
	meta := rs.Meta()
	fmt.Printf("application: %s, %d processes, %d events, %d ticks (streamed)\n",
		meta.AppName, meta.Procs, meta.Events, res.Stats.Ticks)
	fmt.Println(res.Analysis.Summary())
	if budget > 0 {
		fmt.Printf("out-of-core: budget %s, %d phase matrices spilled (%d bytes), %d reloads\n",
			budgetStr, res.Stats.SpilledPhases, res.Stats.SpillBytes, res.Stats.SpillLoads)
	}
	res.Table.Print(os.Stdout)
	if outPath != "" {
		g, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		enc := json.NewEncoder(g)
		enc.SetIndent("", " ")
		if err := enc.Encode(res.Table); err != nil {
			return err
		}
		fmt.Printf("phase table written to %s\n", outPath)
	}
	return nil
}

// parseBytes parses a human byte size: plain bytes, or a decimal with
// a KiB/MiB/GiB (binary) or KB/MB/GB (decimal) suffix.
func parseBytes(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suf string
		m   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1},
	} {
		if strings.HasSuffix(s, u.suf) {
			mult = u.m
			s = strings.TrimSpace(strings.TrimSuffix(s, u.suf))
			break
		}
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", orig)
	}
	return int64(n * float64(mult)), nil
}

func cmdAET(args []string) error {
	fs := newFlagSet("aet")
	app := fs.String("app", "", "application name")
	procs := fs.Int("procs", 64, "number of processes")
	workload := fs.String("workload", "", "workload name")
	cluster := fs.String("cluster", "A", "cluster (A..D)")
	cores := fs.Int("cores", 0, "restrict the cluster to this many cores")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("aet: -app is required")
	}
	a, err := apps.Make(*app, *procs, *workload)
	if err != nil {
		return err
	}
	d, err := deployFor(*cluster, *cores, *procs)
	if err != nil {
		return err
	}
	res, err := mpi.Run(a, mpi.RunConfig{Deployment: d})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s\n", *app, d)
	fmt.Printf("AET: %.2fs (virtual)\n", res.Elapsed.Seconds())
	return nil
}

func cmdPredict(args []string) error {
	fs := newFlagSet("predict")
	app := fs.String("app", "", "application name")
	procs := fs.Int("procs", 64, "number of processes")
	workload := fs.String("workload", "", "workload name")
	base := fs.String("base", "A", "base cluster (signature construction)")
	target := fs.String("target", "B", "target cluster (prediction)")
	cores := fs.Int("cores", 0, "restrict the target to this many cores")
	timeline := fs.Bool("timeline", false, "print the signature execution timeline (paper Fig. 11)")
	allPhases := fs.Bool("all-phases", false, "measure every phase, not only the relevant ones")
	noTruth := fs.Bool("no-ground-truth", false, "skip the full target run (prediction only)")
	metricsOut := fs.String("metrics", "", "write a metrics snapshot (stage spans, counters) as JSON")
	faultSpec := fs.String("faults", "", "inject faults into the pipeline, e.g. loss=0.02,crash=0.1 (see 'pas2p chaos')")
	seed := fs.Int64("seed", 1, "fault-injection seed (with -faults)")
	serve := fs.String("serve", "", "serve live telemetry on this address during the run, e.g. 127.0.0.1:9090 (port 0 picks one)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("predict: -app is required")
	}
	inj, err := faults.ParseSpec(*seed, *faultSpec)
	if err != nil {
		return err
	}
	if *faultSpec == "" {
		inj = nil
	}
	a, err := apps.Make(*app, *procs, *workload)
	if err != nil {
		return err
	}
	bd, err := deployFor(*base, 0, *procs)
	if err != nil {
		return err
	}
	td, err := deployFor(*target, *cores, *procs)
	if err != nil {
		return err
	}
	exp := predict.Experiment{
		App: a, Base: bd, Target: td,
		EventOverhead: 8 * vtime.Microsecond,
		SkipTargetAET: *noTruth,
		Faults:        inj,
	}
	if *allPhases {
		sig := exp.Signature
		sig.AllPhases = true
		exp.Signature = sig
	}
	if *metricsOut != "" || *serve != "" {
		exp.Observer = obs.New()
	}
	stopServe, err := startServe(*serve, exp.Observer)
	if err != nil {
		return err
	}
	defer stopServe()
	out, err := predict.Run(exp)
	if err != nil {
		return err
	}
	fmt.Printf("application : %s (%d processes, workload %q)\n", *app, *procs, *workload)
	fmt.Printf("base machine: %s\n", bd)
	fmt.Printf("target      : %s\n", td)
	fmt.Printf("analysis    : %d phases, %d relevant, tracefile %d bytes, TFAT %.3fs\n",
		out.Total, out.Relevant, out.TFSize, out.TFAT.Seconds())
	fmt.Printf("construction: SCT %.2fs, base AET %.2fs (instrumented %.2fs)\n",
		out.SCT.Seconds(), out.AETBase.Seconds(), out.AETPAS2P.Seconds())
	fmt.Printf("signature   : SET %.2fs\n", out.SET.Seconds())
	fmt.Printf("prediction  : PET %.2fs\n", out.PET.Seconds())
	if !*noTruth {
		fmt.Printf("ground truth: AET %.2fs  ->  PETE %.2f%%  (SET is %.2f%% of AET)\n",
			out.AETTarget.Seconds(), out.PETEPercent, out.SETvsAETPercent)
	}
	if inj != nil {
		fmt.Println(inj.Report())
		if out.Degraded {
			fmt.Printf("DEGRADED: phases %v lost to unrecovered crashes; PET covers the surviving phases only\n",
				out.LostPhases)
		}
	}
	if *timeline {
		printTimeline(out)
	}
	if *metricsOut != "" {
		if err := writeSnapshot(exp.Observer.Registry.Snapshot(), *metricsOut, ""); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	return nil
}

// printTimeline renders the paper's Fig. 11: restart, measure, restart,
// ..., then the prediction model.
func printTimeline(out *predict.Outcome) {
	fmt.Println("\nsignature execution timeline (Fig. 11):")
	var t float64
	for _, m := range out.Phases {
		r := m.Restart.Seconds()
		wu := m.Warmup.Seconds()
		et := m.ET.Seconds()
		fmt.Printf(" t=%8.3fs  restart ckpt(phase %d)   +%.3fs\n", t, m.PhaseID, r)
		t += r
		fmt.Printf(" t=%8.3fs  warm-up                  +%.3fs\n", t, wu)
		t += wu
		fmt.Printf(" t=%8.3fs  measure phase %-3d        +%.3fs (x weight %d -> %.2fs)\n",
			t, m.PhaseID, et, m.Weight, m.Contribution().Seconds())
		t += et
	}
	fmt.Printf(" t=%8.3fs  all processes report; Eq.(1) -> PET %.2fs\n",
		t, out.PET.Seconds())
}
