// Command pas2p is the command-line front end of the PAS2P tool: it
// traces applications on modelled clusters, analyses traces into
// phases, constructs signatures and predicts execution times on target
// machines, mirroring the workflow of the original tool described in
// the paper.
//
// Usage:
//
//	pas2p apps                               list applications and workloads
//	pas2p clusters                           list modelled clusters (Table 2)
//	pas2p trace    -app cg -procs 64 ...     instrument a run, write a tracefile
//	pas2p analyze  -trace cg.pas2p ...       extract phases, print the phase table
//	pas2p aet      -app cg -cluster B ...    run the full application (ground truth)
//	pas2p predict  -app cg -base A -target B full pipeline: signature + prediction
//	pas2p profile  cg -ranks 16              instrumented pipeline: metrics + timeline
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// A panic mid-run must not take the flight recorder's event tail
	// with it: dump the retained events before re-panicking.
	defer func() {
		if r := recover(); r != nil {
			dumpFlight()
			panic(r)
		}
	}()
	var err error
	switch os.Args[1] {
	case "apps":
		err = cmdApps(os.Args[2:])
	case "clusters":
		err = cmdClusters(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "render":
		err = cmdRender(os.Args[2:])
	case "aet":
		err = cmdAET(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "sign":
		err = cmdSign(os.Args[2:])
	case "execsig":
		err = cmdExecSig(os.Args[2:])
	case "repo":
		err = cmdRepo(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pas2p: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		dumpFlight()
		fmt.Fprintf(os.Stderr, "pas2p: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pas2p — parallel application signatures for performance prediction

commands:
  apps                          list registered applications and workloads
  clusters                      print the modelled clusters (paper Table 2)
  trace    -app A -procs N [-workload W] [-cluster C] [-o FILE] [-json]
                                instrument a run and write the tracefile
  analyze  -trace FILE [-o TABLE.json] [-metrics FILE]
           [-timeline FILE] [-prom FILE] [-faults skew=...,drift=...]
           [-serve ADDR]
                                build the model, extract phases, print the
                                phase table (paper Fig. 7); -serve exposes
                                live /metrics, /spans, /flight, /timeline
                                and /debug/pprof over HTTP during the run
  inspect  -trace FILE [-proc P] [-n N] [-ticks]
                                examine a tracefile: stats, event dumps,
                                logical tick table
  render   -trace FILE [-o OUT.svg] [-from D -to D]
                                draw the tracefile as an SVG timeline
  aet      -app A -procs N [-workload W] [-cluster C] [-cores K]
                                run the full application for its AET
  predict  -app A -procs N [-workload W] -base B -target T [-cores K]
           [-timeline] [-all-phases] [-metrics FILE] [-faults SPEC -seed S]
           [-serve ADDR]
                                construct the signature on the base cluster,
                                execute it on the target, predict the AET and
                                (with a ground-truth run) report the error
  profile  APP [-ranks N] [-base B] [-target T] [-metrics FILE]
           [-timeline FILE] [-prom FILE]
                                run the full pipeline under instrumentation
                                and emit a metrics snapshot plus a Chrome
                                trace-event timeline (Perfetto-loadable)
  chaos    APP [-ranks N] [-seed S] [-faults SPEC] [-verify=false]
           [-metrics FILE] [-timeline FILE] [-serve ADDR]
                                run the pipeline under deterministic fault
                                injection (message loss/dup/delay, crashes
                                with checkpoint restart, clock jitter) and
                                verify the seed reproduces the prediction
  sign     -app A -procs N [-workload W] [-base B] [-o SIG.json]
                                stage A only: build the signature once and
                                persist it
  execsig  -sig SIG.json [-target T] [-cores K]
                                stage B only: carry a persisted signature to
                                a target machine and predict there
  repo     add|list|predict|fsck -dir D ...
                                manage a site-wide signature repository (the
                                scheduler metadata store of the paper's §1);
                                add -verify re-reads the entry after writing,
                                fsck quarantines corrupt entries and rebuilds
                                the manifest
  scenario run|validate PATH [-workers N] [-timeout D] [-json FILE]
           [-junit FILE] [-serve ADDR] [-v]
                                execute (or just validate) a declarative
                                scenario suite: each *.yaml describes an app,
                                machine models, optional faults and
                                assertions (PETE bound, phase counts,
                                recovery invariant, determinism, budgets);
                                run sweeps targets x fault seeds and exits
                                non-zero on any violated assertion
`)
}
