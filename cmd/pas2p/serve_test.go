package main

import (
	"encoding/json"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pas2p/internal/obs"
	"pas2p/internal/obs/obshttp"
)

// withServeHooks installs lifecycle hooks for one command run and
// restores the previous hooks (and crash-dump state) afterwards.
func withServeHooks(t *testing.T, onStart, onDone func(s *obshttp.Server)) {
	t.Helper()
	oldStart, oldDone, oldFlight := serveStartHook, serveDoneHook, activeFlight
	serveStartHook, serveDoneHook = onStart, onDone
	t.Cleanup(func() {
		serveStartHook, serveDoneHook, activeFlight = oldStart, oldDone, oldFlight
	})
}

// promSampleRe matches one exposition-format sample line: metric name,
// optional {labels}, and a value. Label values may contain only the
// three legal escapes.
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\[\\"n]|[^"\\\n])*",?)*\})? [^ ]+( [0-9]+)?$`)

// checkPromBody validates every line of a /metrics scrape against the
// exposition grammar and returns the set of sample names seen.
func checkPromBody(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("line %d is not valid Prometheus exposition text: %q", ln+1, line)
			continue
		}
		names[strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]] = true
	}
	return names
}

func healthStatus(t *testing.T, s *obshttp.Server) string {
	t.Helper()
	body, err := s.Fetch("/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h.Status
}

// TestAnalyzeServeLiveTelemetry runs `pas2p analyze -serve 127.0.0.1:0`
// against a freshly traced app: while the run is live /healthz says
// ready and /metrics is spec-valid Prometheus text with the runtime
// gauges; after the run /healthz flips to done and the span summaries
// cover the analysis stages.
func TestAnalyzeServeLiveTelemetry(t *testing.T) {
	dir := t.TempDir()
	tf := filepath.Join(dir, "cg.pas2p")
	if err := cmdTrace([]string{"-app", "cg", "-procs", "8", "-o", tf}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	started, finished := false, false
	withServeHooks(t,
		func(s *obshttp.Server) {
			started = true
			if got := healthStatus(t, s); got != "ready" {
				t.Errorf("live /healthz status = %q, want ready", got)
			}
			body, err := s.Fetch("/metrics")
			if err != nil {
				t.Fatalf("GET /metrics: %v", err)
			}
			names := checkPromBody(t, string(body))
			if !names["pas2p_runtime_goroutines"] {
				t.Errorf("live /metrics is missing runtime gauges; got %d samples", len(names))
			}
		},
		func(s *obshttp.Server) {
			finished = true
			if got := healthStatus(t, s); got != "done" {
				t.Errorf("post-run /healthz status = %q, want done", got)
			}
			body, err := s.Fetch("/metrics")
			if err != nil {
				t.Fatalf("GET /metrics: %v", err)
			}
			names := checkPromBody(t, string(body))
			for _, want := range []string{
				"pas2p_span_wall_seconds", "pas2p_span_wall_seconds_count", "pas2p_codec_decode_blocks",
			} {
				if !names[want] {
					t.Errorf("post-run /metrics is missing %s", want)
				}
			}
			spans, err := s.Fetch("/spans")
			if err != nil {
				t.Fatalf("GET /spans: %v", err)
			}
			var doc struct {
				Stats map[string]obs.SpanStatsSnapshot `json:"stats"`
			}
			if err := json.Unmarshal(spans, &doc); err != nil {
				t.Fatal(err)
			}
			for _, stage := range []string{"analyze.order", "phase.extract", "analyze.table"} {
				if st, ok := doc.Stats[stage]; !ok || st.Count < 1 || st.WallP99NS < st.WallP50NS {
					t.Errorf("span stats for %s = %+v (present %v)", stage, st, ok)
				}
			}
		})
	if err := cmdAnalyze([]string{"-trace", tf, "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatalf("analyze -serve: %v", err)
	}
	if !started || !finished {
		t.Fatalf("serve hooks did not both fire (start %v, done %v)", started, finished)
	}
}

// TestChaosServeFlightRecorder runs `pas2p chaos -serve` with
// aggressive fault rates and checks /flight lists the injected faults
// as ordered structured events — and that recording them does not
// break the seed-determinism check (-verify stays on).
func TestChaosServeFlightRecorder(t *testing.T) {
	withServeHooks(t, nil, func(s *obshttp.Server) {
		body, err := s.Fetch("/flight")
		if err != nil {
			t.Fatalf("GET /flight: %v", err)
		}
		var fs obs.FlightSnapshot
		if err := json.Unmarshal(body, &fs); err != nil {
			t.Fatal(err)
		}
		if len(fs.Events) == 0 {
			t.Fatal("/flight has no events despite injected faults")
		}
		kinds := map[string]int{}
		for i, ev := range fs.Events {
			kinds[ev.Kind]++
			if i > 0 && ev.Seq <= fs.Events[i-1].Seq {
				t.Errorf("flight events out of order: seq %d then %d", fs.Events[i-1].Seq, ev.Seq)
			}
		}
		if kinds["fault.msg_lost"] == 0 {
			t.Errorf("no fault.msg_lost events in flight; kinds = %v", kinds)
		}
		if kinds["exec.restart"] == 0 {
			t.Errorf("no exec.restart events in flight; kinds = %v", kinds)
		}
	})
	err := cmdChaos([]string{"cg", "-ranks", "8", "-seed", "7",
		"-faults", "loss=0.1,crash=0.2", "-no-ground-truth", "-serve", "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("chaos -serve: %v", err)
	}
}

// TestPredictServe checks the third -serve surface: the prediction
// pipeline serves scrapes and reports its stage spans.
func TestPredictServe(t *testing.T) {
	var scraped bool
	withServeHooks(t, nil, func(s *obshttp.Server) {
		scraped = true
		body, err := s.Fetch("/spans")
		if err != nil {
			t.Fatalf("GET /spans: %v", err)
		}
		if !strings.Contains(string(body), "signature.execute") {
			t.Errorf("/spans does not report the signature execution stage:\n%.400s", body)
		}
	})
	err := cmdPredict([]string{"-app", "cg", "-procs", "8",
		"-no-ground-truth", "-serve", "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("predict -serve: %v", err)
	}
	if !scraped {
		t.Fatal("serve done hook did not fire")
	}
}

// TestServeBadAddrFails pins the error path: an unusable address must
// fail the command before any work happens.
func TestServeBadAddrFails(t *testing.T) {
	err := cmdPredict([]string{"-app", "cg", "-procs", "8", "-serve", "notanaddr:-1"})
	if err == nil {
		t.Fatal("predict -serve with a bad address should fail")
	}
}
