package main

import (
	"fmt"
	"io"
	"os"

	"pas2p/internal/fsx"
	"pas2p/internal/obs"
	"pas2p/internal/scenario"
)

// cmdScenario runs or validates declarative scenario suites:
//
//	pas2p scenario validate examples/scenarios
//	pas2p scenario run examples/scenarios -junit results.xml
//
// run executes every scenario's sweep matrix (targets × fault seeds)
// on a bounded worker pool and exits non-zero when any assertion is
// violated, naming the scenario, the assertion and the measured value.
func cmdScenario(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("scenario: usage: pas2p scenario run|validate <path> [flags]")
	}
	verb, args := args[0], args[1:]
	// The path is positional: pas2p scenario run examples/scenarios -v.
	var path string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		path, args = args[0], args[1:]
	}
	switch verb {
	case "validate":
		return scenarioValidate(path, args)
	case "run":
		return scenarioRun(path, args)
	default:
		return fmt.Errorf("scenario: unknown action %q (run or validate)", verb)
	}
}

// scenarioValidate parses every scenario strictly and reports the
// matrix it would run, without executing anything. Unknown keys,
// misspelled assertion names, bad presets, bad fault specs and bad
// bounds all fail here with file:line positions.
func scenarioValidate(path string, args []string) error {
	fs := newFlagSet("scenario validate")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("scenario validate: usage: pas2p scenario validate <file-or-dir>")
	}
	scenarios, err := scenario.Load(path)
	if err != nil {
		return err
	}
	cases := 0
	for _, s := range scenarios {
		cs := s.Cases()
		cases += len(cs)
		fmt.Printf("%-28s %s x%d ranks, %s -> %d target(s), %d case(s)\n",
			s.Name, s.App.Name, s.App.Ranks, s.Base.Label(), len(s.Targets), len(cs))
	}
	fmt.Printf("%d scenario(s), %d case(s): all valid\n", len(scenarios), cases)
	return nil
}

func scenarioRun(path string, args []string) error {
	fs := newFlagSet("scenario run")
	workers := fs.Int("workers", 0, "concurrent cases (0 = all CPUs; use 1 for reliable max_alloc budgets)")
	timeout := fs.Duration("timeout", 0, "per-case wall budget for scenarios that set none (default 2m)")
	jsonOut := fs.String("json", "", "write the canonical JSON results document to this path")
	junitOut := fs.String("junit", "", "write JUnit XML for CI to this path")
	verbose := fs.Bool("v", false, "print one progress line per finished case")
	serve := fs.String("serve", "", "serve live telemetry during the campaign, e.g. 127.0.0.1:9090 (port 0 picks one)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("scenario run: usage: pas2p scenario run <file-or-dir> [flags]")
	}
	scenarios, err := scenario.Load(path)
	if err != nil {
		return err
	}
	o := obs.New()
	stopServe, err := startServe(*serve, o)
	if err != nil {
		return err
	}
	defer stopServe()
	opts := scenario.Options{
		Workers:  *workers,
		Timeout:  *timeout,
		Observer: o,
	}
	if *verbose {
		opts.Log = func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		}
	}
	doc, err := scenario.Run(scenarios, opts)
	if err != nil {
		return err
	}
	scenario.PrintTable(os.Stdout, doc)
	if *jsonOut != "" {
		err := fsx.WriteFileAtomic(fsx.OS{}, *jsonOut, func(w io.Writer) error {
			return scenario.WriteJSON(w, doc)
		})
		if err != nil {
			return err
		}
		fmt.Printf("results document written to %s\n", *jsonOut)
	}
	if *junitOut != "" {
		err := fsx.WriteFileAtomic(fsx.OS{}, *junitOut, func(w io.Writer) error {
			return scenario.WriteJUnit(w, doc)
		})
		if err != nil {
			return err
		}
		fmt.Printf("JUnit XML written to %s\n", *junitOut)
	}
	if doc.Failed > 0 {
		return fmt.Errorf("scenario: %d of %d cases failed", doc.Failed, len(doc.Cases))
	}
	return nil
}
