package main

import (
	"fmt"
	"os"
	"time"

	"pas2p/internal/trace"
	"pas2p/internal/viz"
	"pas2p/internal/vtime"
)

// cmdRender draws a tracefile as an SVG timeline.
func cmdRender(args []string) error {
	fs := newFlagSet("render")
	in := fs.String("trace", "", "input tracefile")
	out := fs.String("o", "", "output SVG (default <trace>.svg)")
	width := fs.Int("width", 1200, "drawing width in pixels")
	maxEvents := fs.Int("max-events", 5000, "cap on drawn events")
	from := fs.Duration("from", 0, "window start (virtual, e.g. 1.5s)")
	to := fs.Duration("to", 0, "window end (virtual; 0 = full span)")
	noLinks := fs.Bool("no-links", false, "omit send->recv links")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("render: -trace is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.DecodeAny(f)
	if err != nil {
		return err
	}
	opts := viz.DefaultOptions()
	opts.Width = *width
	opts.MaxEvents = *maxEvents
	opts.ShowMessages = !*noLinks
	if *from > 0 {
		opts.From = vtime.Time(vtime.FromSeconds(float64(*from) / float64(time.Second)))
	}
	if *to > 0 {
		opts.To = vtime.Time(vtime.FromSeconds(float64(*to) / float64(time.Second)))
	}
	path := *out
	if path == "" {
		path = *in + ".svg"
	}
	g, err := os.Create(path)
	if err != nil {
		return err
	}
	defer g.Close()
	if err := viz.RenderTrace(g, tr, opts); err != nil {
		return err
	}
	fmt.Printf("rendered %d events of %s to %s\n", len(tr.Events), tr.AppName, path)
	return nil
}
