package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"pas2p/internal/obs"
	"pas2p/internal/obs/obshttp"
)

// Test hooks around the telemetry server lifecycle. serveStartHook
// fires synchronously once the server is listening (the run has not
// started yet); serveDoneHook fires after the run completes and the
// server is marked done, but before Shutdown — acceptance tests
// scrape /flight, /healthz and /metrics from it deterministically.
var (
	serveStartHook func(s *obshttp.Server)
	serveDoneHook  func(s *obshttp.Server)
)

// activeFlight is the flight recorder of the current -serve (or
// otherwise flight-equipped) run; main dumps it to stderr when the
// command fails or panics, so the events leading up to the failure
// survive even when nobody scraped /flight in time.
var activeFlight *obs.FlightRecorder

// startServe launches the live telemetry server when addr is
// non-empty and returns a finish function for the command to defer:
// it marks the run done, lets a final scrape happen (test hook), and
// shuts the server down, printing a one-line summary of the flushed
// final snapshot. The observer gains a flight recorder if it has
// none, so /flight is always live on a served run.
func startServe(addr string, o *obs.Observer) (finish func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	if o.FR() == nil {
		o.Flight = obs.NewFlightRecorder(0)
	}
	activeFlight = o.Flight
	s, err := obshttp.Serve(addr, o)
	if err != nil {
		return nil, err
	}
	fmt.Printf("telemetry  : serving on %s (metrics, spans, flight, timeline, pprof)\n", s.URL())
	if serveStartHook != nil {
		serveStartHook(s)
	}
	return func() {
		s.SetDone()
		if serveDoneHook != nil {
			serveDoneHook(s)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		snap, err := s.Shutdown(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pas2p: telemetry shutdown: %v\n", err)
		}
		if snap != nil {
			fmt.Printf("telemetry  : stopped after %d scrapes (%d spans, %d flight events)\n",
				snap.Counters["serve.scrapes"], snap.SpansTotal, o.FR().Len())
		}
	}, nil
}

// dumpFlight writes the active flight recorder to stderr; called by
// main on command failure and on panic so the structured event tail
// is not lost with the process.
func dumpFlight() {
	if activeFlight == nil || activeFlight.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "pas2p: flight recorder (%d events):\n", activeFlight.Len())
	activeFlight.WriteJSON(os.Stderr) //nolint:errcheck // best-effort crash dump
	fmt.Fprintln(os.Stderr)
}
