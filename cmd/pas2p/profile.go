package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"pas2p/internal/apps"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/predict"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// cmdProfile runs the full prediction pipeline under a fully enabled
// observer and writes both observability artifacts: a metrics snapshot
// (stage spans, counters, histograms) and a Chrome trace-event timeline
// (host pipeline stages, traced-run rank tracks with phase boundaries,
// signature execution rank tracks). Open the timeline at
// https://ui.perfetto.dev or chrome://tracing.
func cmdProfile(args []string) error {
	// Accept the app as a positional argument: pas2p profile cg -ranks 16.
	var app string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		app, args = args[0], args[1:]
	}
	fs := newFlagSet("profile")
	ranks := fs.Int("ranks", 16, "number of processes")
	workload := fs.String("workload", "", "workload name (default: app's default)")
	base := fs.String("base", "A", "base cluster (signature construction)")
	target := fs.String("target", "B", "target cluster (prediction)")
	cores := fs.Int("cores", 0, "restrict the target to this many cores")
	metricsOut := fs.String("metrics", "", "metrics JSON path (default <app>.metrics.json)")
	timelineOut := fs.String("timeline", "", "trace-event JSON path (default <app>.trace.json)")
	promOut := fs.String("prom", "", "also write the metrics in Prometheus text format")
	noTruth := fs.Bool("no-ground-truth", false, "skip the full target run")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if app == "" {
		return fmt.Errorf("profile: usage: pas2p profile <app> [-ranks N] ...")
	}
	a, err := apps.Make(app, *ranks, *workload)
	if err != nil {
		return err
	}
	bd, err := deployFor(*base, 0, *ranks)
	if err != nil {
		return err
	}
	td, err := deployFor(*target, *cores, *ranks)
	if err != nil {
		return err
	}

	o := obs.NewWithTimeline()
	t0 := time.Now()
	out, err := predict.Run(predict.Experiment{
		App: a, Base: bd, Target: td,
		EventOverhead: 8 * vtime.Microsecond,
		SkipTargetAET: *noTruth,
		Observer:      o,
	})
	wall := time.Since(t0)
	if err != nil {
		return err
	}

	snap := o.Registry.Snapshot()
	snap.AddPipelineTrack(o.Timeline, "pipeline (wall clock)")

	mPath := *metricsOut
	if mPath == "" {
		mPath = app + ".metrics.json"
	}
	tPath := *timelineOut
	if tPath == "" {
		tPath = app + ".trace.json"
	}
	if err := writeSnapshot(snap, mPath, *promOut); err != nil {
		return err
	}
	if err := writeTimeline(o.Timeline, tPath); err != nil {
		return err
	}

	fmt.Printf("profiled %s (%d ranks): PET %.2fs, SET %.2fs", app, *ranks,
		out.PET.Seconds(), out.SET.Seconds())
	if !*noTruth {
		fmt.Printf(", AET %.2fs, PETE %.2f%%", out.AETTarget.Seconds(), out.PETEPercent)
	}
	fmt.Println()
	printSpanReport(snap, wall)
	fmt.Printf("metrics : %s\n", mPath)
	fmt.Printf("timeline: %s (%d events; open in Perfetto)\n", tPath, o.Timeline.Len())
	return nil
}

// printSpanReport lists the per-stage span aggregates — count, total
// wall time, share of the measured wall, and the p50/p95/p99 wall
// quantiles from the stage's histogram — plus each stage's allocation
// count. The pipeline spans are disjoint, so the shares sum to the
// fraction of the run the instrumentation accounts for.
func printSpanReport(snap *obs.Snapshot, wall time.Duration) {
	if len(snap.SpanStats) == 0 || wall <= 0 {
		return
	}
	names := make([]string, 0, len(snap.SpanStats))
	for n := range snap.SpanStats {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	var total int64
	fmt.Println("stage spans:")
	fmt.Printf("  %-20s %5s %12s %7s %10s %10s %10s %9s\n",
		"STAGE", "COUNT", "TOTAL", "SHARE", "P50", "P95", "P99", "ALLOCS")
	for _, n := range names {
		st := snap.SpanStats[n]
		total += st.WallSumNS
		fmt.Printf("  %-20s %5d %10.3fms %6.1f%% %8.3fms %8.3fms %8.3fms %9d\n",
			n, st.Count, ms(st.WallSumNS),
			100*float64(st.WallSumNS)/float64(wall.Nanoseconds()),
			ms(st.WallP50NS), ms(st.WallP95NS), ms(st.WallP99NS), st.Allocs)
	}
	fmt.Printf("span coverage: %.1f%% of %.3fms wall (%d spans recorded, %d retained)\n",
		100*float64(total)/float64(wall.Nanoseconds()), float64(wall.Nanoseconds())/1e6,
		snap.SpansTotal, int64(len(snap.Spans)))
}

// writeSnapshot writes the metrics snapshot as JSON and, optionally, in
// Prometheus text format.
func writeSnapshot(snap *obs.Snapshot, jsonPath, promPath string) error {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if promPath != "" {
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := snap.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeTimeline writes the trace-event file.
func writeTimeline(tl *obs.Timeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timelineFromTrace renders an existing tracefile's events as rank
// tracks (one slice per communication event, at its recorded virtual
// Enter/Exit), so `pas2p analyze -timeline` produces a viewable
// timeline without re-running the application.
func timelineFromTrace(tl *obs.Timeline, tr *trace.Trace) int {
	pid := tl.NewProcess(fmt.Sprintf("trace:%s (%d ranks)", tr.AppName, tr.Procs))
	for p := 0; p < tr.Procs; p++ {
		tl.SetThreadName(pid, p, fmt.Sprintf("rank %d", p))
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		cat := "comm"
		if ev.Kind == trace.Collective {
			cat = "collective"
		}
		tl.Slice(pid, int(ev.Process), ev.Kind.String(), cat,
			float64(ev.Enter)/1e3, float64(ev.Exit.Sub(ev.Enter))/1e3)
	}
	return pid
}

// addPhaseBoundaries marks each phase occurrence's start as an instant
// event on the given track. Occurrence durations tile the run, so the
// running sum over StartTick-ordered occurrences recovers each start on
// the traced run's virtual clock.
func addPhaseBoundaries(tl *obs.Timeline, pid int, an *phase.Analysis) {
	type occ struct {
		id  int
		dur vtime.Duration
		at  int
	}
	var occs []occ
	for _, p := range an.Phases {
		for _, oc := range p.Occurrences {
			occs = append(occs, occ{id: p.ID, dur: oc.Dur, at: oc.StartTick})
		}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].at < occs[j].at })
	var t vtime.Duration
	for _, oc := range occs {
		tl.Instant(pid, 0, fmt.Sprintf("phase %d", oc.id), float64(t)/1e3)
		t += oc.dur
	}
}
