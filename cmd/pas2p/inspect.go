package main

import (
	"fmt"
	"os"

	"pas2p/internal/logical"
	"pas2p/internal/phase"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// cmdInspect examines a tracefile: header stats, per-process event
// counts, event dumps, and (with -ticks) the logical tick table — the
// debugging view the original tool's users get from visualisers like
// Vampir, folded into the CLI as the paper suggests ("without
// requiring visualization tools").
func cmdInspect(args []string) error {
	fs := newFlagSet("inspect")
	in := fs.String("trace", "", "input tracefile")
	proc := fs.Int("proc", -1, "dump events of this process")
	limit := fs.Int("n", 20, "max events to dump")
	offset := fs.Int("offset", 0, "first event to dump")
	ticks := fs.Bool("ticks", false, "build the logical model and print tick stats")
	phases := fs.Bool("phases", false, "extract phases and print per-phase attribution (pair bias, ETScale)")
	warm := fs.Int("warm", 1, "warm occurrence index for -phases attribution")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -trace is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.DecodeAny(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("inspect: trace fails validation: %w", err)
	}
	st := tr.Stats()
	fmt.Printf("application : %s\n", tr.AppName)
	fmt.Printf("processes   : %d\n", tr.Procs)
	fmt.Printf("events      : %d (%d sends, %d recvs, %d collectives)\n",
		st.Events, st.Sends, st.Recvs, st.Collectives)
	fmt.Printf("volume      : %d bytes\n", st.Bytes)
	fmt.Printf("span        : %.3fs (instrumented virtual AET)\n", tr.AET.Seconds())

	per := tr.PerProcess()
	fmt.Printf("\n%-8s %-8s %-10s %-12s %s\n", "proc", "events", "sends", "computeSum", "lastExit")
	for p, evs := range per {
		var sends int
		var comp vtime.Duration
		var last vtime.Time
		for i := range evs {
			if evs[i].Kind == trace.Send {
				sends++
			}
			comp += evs[i].ComputeBefore
			if evs[i].Exit > last {
				last = evs[i].Exit
			}
		}
		fmt.Printf("%-8d %-8d %-10d %-12.3f %.3fs\n", p, len(evs), sends, comp.Seconds(), last.Seconds())
	}

	if *proc >= 0 {
		if *proc >= tr.Procs {
			return fmt.Errorf("inspect: process %d out of range", *proc)
		}
		evs := per[*proc]
		fmt.Printf("\nevents of process %d [%d..%d):\n", *proc, *offset, *offset+*limit)
		fmt.Printf("%-6s %-6s %-8s %-6s %-10s %-12s %-12s %s\n",
			"num", "kind", "peer", "tag", "size", "enter", "exit", "computeBefore")
		for i := *offset; i < len(evs) && i < *offset+*limit; i++ {
			e := &evs[i]
			fmt.Printf("%-6d %-6s %-8d %-6d %-10d %-12v %-12v %v\n",
				e.Number, e.Kind, e.Peer, e.Tag, e.Size, e.Enter, e.Exit, e.ComputeBefore)
		}
	}

	if *phases {
		l, err := logical.Order(tr)
		if err != nil {
			return err
		}
		an, err := phase.Extract(l, phase.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", an.Summary())
		fmt.Printf("per-phase attribution (warm occurrence %d):\n", *warm)
		phase.PrintAttribution(os.Stdout, an.Attribution(*warm))
	}

	if *ticks {
		l, err := logical.Order(tr)
		if err != nil {
			return err
		}
		hist := map[int]int{}
		for _, slots := range l.Ticks {
			hist[len(slots)]++
		}
		fmt.Printf("\nlogical model: %d ticks (mean width %.2f events)\n",
			l.NumTicks(), float64(len(tr.Events))/float64(l.NumTicks()))
		fmt.Println("tick-width histogram (events-at-tick: count):")
		for w := 1; w <= tr.Procs; w++ {
			if hist[w] > 0 {
				fmt.Printf("  %3d: %d\n", w, hist[w])
			}
		}
	}
	return nil
}
