package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"pas2p/internal/service"
)

// TestDaemonLifecycle drives the full daemon body: start, serve real
// requests, receive a SIGTERM, drain gracefully, and flush the final
// snapshot atomically.
func TestDaemonLifecycle(t *testing.T) {
	repo := t.TempDir()
	snap := filepath.Join(t.TempDir(), "snapshot.json")
	var stdout, stderr bytes.Buffer
	stop := make(chan os.Signal, 1)
	ready := make(chan *service.Server, 1)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-repo", repo,
			"-snapshot", snap,
			"-drain-timeout", "5s",
		}, &stdout, &stderr, func(s *service.Server) { ready <- s }, stop)
	}()
	srv := <-ready

	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ready" {
		t.Fatalf("healthz = %q, want ready", h.Status)
	}
	// A served request (typed 404 — the repo is empty) so the final
	// snapshot has traffic to report.
	resp, err = http.Get(srv.URL() + "/v1/lookup?app=cg&procs=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("lookup on empty repo: %d, want 404", resp.StatusCode)
	}

	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"serving on", "draining", "drained in", "final snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if doc.Counters["service.requests"] != 1 {
		t.Fatalf("snapshot counters = %v, want 1 service request", doc.Counters)
	}
}

// TestDaemonFlagErrors pins the daemon's refusal paths: they must be
// errors from run, not panics or silent defaults.
func TestDaemonFlagErrors(t *testing.T) {
	var out bytes.Buffer
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no repo", []string{"-addr", "127.0.0.1:0"}, "-repo is required"},
		{"stray arg", []string{"-repo", "x", "stray"}, "unexpected argument"},
		{"bad fault spec", []string{"-repo", "x", "-faults", "nonsense=1"}, ""},
		{"bad fs fault spec", []string{"-repo", "x", "-fsfaults", "zap=1"}, ""},
	} {
		err := run(tc.args, &out, &out, nil, nil)
		if err == nil {
			t.Errorf("%s: run accepted %v", tc.name, tc.args)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDaemonChaosFlagsWire checks that chaos mode actually threads the
// injector and fault filesystem into the service (the startup banner
// is the observable contract).
func TestDaemonChaosFlagsWire(t *testing.T) {
	var stdout, stderr bytes.Buffer
	stop := make(chan os.Signal, 1)
	ready := make(chan *service.Server, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-repo", t.TempDir(),
			"-fault-seed", "7",
			"-faults", "loss=0.05,dup=0.03,delay=0.10",
			"-fsfaults", "torn=0.2,trunc=0.1,flip=0.1",
		}, &stdout, &stderr, func(s *service.Server) { ready <- s }, stop)
	}()
	<-ready
	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "pipeline faults") || !strings.Contains(out, "storage faults") {
		t.Fatalf("chaos banners missing:\n%s", out)
	}
}
