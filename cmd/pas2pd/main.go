// Command pas2pd is the PAS2P signature service daemon: an HTTP/JSON
// server exposing the pipeline (analyze a submitted tracefile, sign a
// registered application, look stored signatures up, predict on target
// machines) over a crash-safe signature repository, hardened with
// per-request deadlines, cost-aware load shedding, panic isolation,
// a single-flight analysis cache, and graceful drain on SIGTERM.
//
// Usage:
//
//	pas2pd -repo DIR [-addr HOST:PORT] [-drain-timeout D]
//	       [-heavy-slots N -heavy-queue N -light-slots N -light-queue N]
//	       [-heavy-deadline D -light-deadline D]
//	       [-fault-seed S -faults SPEC -fsfaults SPEC]   (chaos mode)
//	       [-snapshot FILE]
//
// Chaos mode wires a deterministic fault injector into served sign
// runs (-faults, the pas2p chaos grammar: loss=0.05,dup=0.01,...) and
// a fault-injecting filesystem under the repository (-fsfaults:
// torn=0.05,trunc=0.02,flip=0.01). The service's contract holds under
// both: every request either succeeds with a checksum-valid answer or
// fails cleanly with a typed error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/obs"
	"pas2p/internal/service"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, stop); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "pas2pd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon body, separated from main so tests can drive the
// full lifecycle: ready (when non-nil) fires once the server listens,
// and a value on stop triggers the graceful drain.
func run(args []string, stdout, stderr io.Writer, ready func(*service.Server), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("pas2pd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8077", "listen address (port 0 picks a free port)")
		repoDir       = fs.String("repo", "", "signature repository directory (required)")
		drainTimeout  = fs.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight requests before shedding them")
		heavySlots    = fs.Int("heavy-slots", 0, "concurrent heavy requests (analyze/sign/predict/fsck); 0 = GOMAXPROCS")
		heavyQueue    = fs.Int("heavy-queue", 0, "heavy admission queue bound; 0 = 4x slots, -1 = no queue")
		lightSlots    = fs.Int("light-slots", 0, "concurrent light requests (lookup); 0 = 4x GOMAXPROCS")
		lightQueue    = fs.Int("light-queue", 0, "light admission queue bound; 0 = 8x slots, -1 = no queue")
		heavyDeadline = fs.Duration("heavy-deadline", 30*time.Second, "default deadline for heavy requests")
		lightDeadline = fs.Duration("light-deadline", 2*time.Second, "default deadline for light requests")
		cacheEntries  = fs.Int("cache", 128, "analysis LRU capacity (entries)")
		maxBody       = fs.Int64("max-body", 64<<20, "request body cap in bytes")
		faultSeed     = fs.Int64("fault-seed", 1, "seed for -faults and -fsfaults decisions")
		faultSpec     = fs.String("faults", "", "pipeline fault spec for served sign runs (loss=0.05,dup=0.01,...)")
		fsFaultSpec   = fs.String("fsfaults", "", "storage fault spec under the repository (torn=0.05,trunc=0.02,flip=0.01)")
		snapshotPath  = fs.String("snapshot", "", "write the final metrics snapshot JSON here on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *repoDir == "" {
		return fmt.Errorf("-repo is required")
	}

	cfg := service.Config{
		RepoDir:       *repoDir,
		Observer:      obs.New(),
		HeavySlots:    *heavySlots,
		HeavyQueue:    *heavyQueue,
		LightSlots:    *lightSlots,
		LightQueue:    *lightQueue,
		HeavyDeadline: *heavyDeadline,
		LightDeadline: *lightDeadline,
		CacheEntries:  *cacheEntries,
		MaxBodyBytes:  *maxBody,
	}
	cfg.Observer.Flight = obs.NewFlightRecorder(0)
	if *faultSpec != "" {
		inj, err := faults.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			return err
		}
		cfg.Faults = inj
		fmt.Fprintf(stdout, "chaos      : pipeline faults %q (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *fsFaultSpec != "" {
		fscfg, err := faults.ParseFSConfig(*fsFaultSpec)
		if err != nil {
			return err
		}
		fscfg.Seed = *faultSeed
		ffs, err := faults.NewFaultFS(fsx.OS{}, fscfg)
		if err != nil {
			return err
		}
		cfg.FS = ffs
		fmt.Fprintf(stdout, "chaos      : storage faults %q under %s (seed %d)\n", *fsFaultSpec, *repoDir, *faultSeed)
	}

	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	srv, err := service.Listen(*addr, svc)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pas2pd     : serving on %s (repo %s)\n", srv.URL(), *repoDir)
	if ready != nil {
		ready(srv)
	}

	sig := <-stop
	if sig != nil {
		fmt.Fprintf(stdout, "pas2pd     : %v received, draining (timeout %v)\n", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	rep, snap, err := srv.DrainAndShutdown(ctx)
	fmt.Fprintf(stdout, "pas2pd     : drained in %v (%d in flight at start: %d finished, %d shed)\n",
		rep.Waited.Round(time.Millisecond), rep.InFlightAtStart, rep.Finished, rep.Shed)
	if err != nil {
		fmt.Fprintf(stderr, "pas2pd: http shutdown: %v\n", err)
	}
	if *snapshotPath != "" {
		if werr := writeSnapshot(*snapshotPath, snap); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "pas2pd     : final snapshot written to %s\n", *snapshotPath)
	}
	fmt.Fprintf(stdout, "pas2pd     : served %d requests (%d ok, %d typed errors, %d panics isolated)\n",
		snap.Counters["service.requests"], snap.Counters["service.ok"],
		snap.Counters["service.typed_errors"], snap.Counters["service.panics"])
	return nil
}

// writeSnapshot flushes the final obs snapshot atomically, so a
// half-written file never masquerades as a completed run's telemetry.
func writeSnapshot(path string, snap *obs.Snapshot) error {
	return fsx.WriteFileAtomic(fsx.OS{}, path, func(w io.Writer) error {
		return snap.WriteJSON(w)
	})
}
