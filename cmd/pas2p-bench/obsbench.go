package main

import (
	"fmt"
	"time"

	"pas2p/internal/apps"
	"pas2p/internal/machine"
	"pas2p/internal/obs"
	"pas2p/internal/predict"
	"pas2p/internal/vtime"
)

// obsResult quantifies what instrumentation costs: the same pipeline
// run with a nil observer (every hook on its zero-alloc fast path)
// and with a fully enabled one (metrics registry, span aggregation,
// flight recorder). OverheadPercent is the claim the observability
// layer has to defend — pull-based telemetry must stay cheap.
type obsResult struct {
	App             string  `json:"app"`
	Ranks           int     `json:"ranks"`
	Iters           int     `json:"iters"`
	NilNsPerOp      int64   `json:"nil_observer_ns_per_op"`
	ObsNsPerOp      int64   `json:"instrumented_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
	SpansRecorded   int64   `json:"spans_recorded"`
	FlightEvents    int     `json:"flight_events"`
}

// runObsBench measures the pipeline's observer overhead: iters runs
// with a nil observer against iters runs with metrics + flight
// recording enabled, same app and machines.
func runObsBench(appName string, ranks, iters int) (obsResult, error) {
	res := obsResult{App: appName, Ranks: ranks, Iters: iters}
	base, err := machine.NewDeployment(machine.ByName("A"), ranks, machine.MapBlock)
	if err != nil {
		return res, err
	}
	target, err := machine.NewDeployment(machine.ByName("B"), ranks, machine.MapBlock)
	if err != nil {
		return res, err
	}
	run := func(o *obs.Observer) (time.Duration, error) {
		a, err := apps.Make(appName, ranks, "")
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		_, err = predict.Run(predict.Experiment{
			App: a, Base: base, Target: target,
			EventOverhead: 8 * vtime.Microsecond,
			SkipTargetAET: true,
			Observer:      o,
		})
		return time.Since(t0), err
	}
	// Warm-up run outside both measurements, so neither side pays
	// first-iteration effects the other doesn't.
	if _, err := run(nil); err != nil {
		return res, err
	}
	var nilTotal, obsTotal time.Duration
	o := obs.New()
	o.Flight = obs.NewFlightRecorder(0)
	for i := 0; i < iters; i++ {
		d, err := run(nil)
		if err != nil {
			return res, err
		}
		nilTotal += d
		if d, err = run(o); err != nil {
			return res, err
		}
		obsTotal += d
	}
	snap := o.Registry.Snapshot()
	res.NilNsPerOp = nilTotal.Nanoseconds() / int64(iters)
	res.ObsNsPerOp = obsTotal.Nanoseconds() / int64(iters)
	if res.NilNsPerOp > 0 {
		res.OverheadPercent = 100 * float64(res.ObsNsPerOp-res.NilNsPerOp) / float64(res.NilNsPerOp)
	}
	res.SpansRecorded = snap.SpansTotal
	res.FlightEvents = o.Flight.Len()
	return res, nil
}

func printObsBench(r obsResult) {
	fmt.Printf("observer overhead (%s, %d ranks, %d iters): nil %.3fms vs instrumented %.3fms -> %+.1f%% (%d spans, %d flight events)\n",
		r.App, r.Ranks, r.Iters,
		float64(r.NilNsPerOp)/1e6, float64(r.ObsNsPerOp)/1e6,
		r.OverheadPercent, r.SpansRecorded, r.FlightEvents)
}
