package main

import (
	"context"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"pas2p"
	"pas2p/internal/workload"
)

// streamResult is one scale point of the out-of-core pipeline: a
// synthetic trace of the given event count streamed through
// AnalyzeStream under a memory budget, with the observed peak heap
// next to the in-core event footprint it avoided. The soak test
// (TestStreamSoakBoundedMemory) asserts the bound; this cell records
// the measured numbers for the bench artifact.
type streamResult struct {
	Events        int64   `json:"events"`
	TraceBytes    int64   `json:"trace_bytes"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	EventsPerSec  float64 `json:"events_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	Ticks         int     `json:"ticks"`
	Phases        int     `json:"phases"`
	SpilledPhases int     `json:"spilled_phases"`
}

// runStreamBench synthesises a ring+allreduce trace of about the given
// event count in a temp file and measures one streamed analysis.
func runStreamBench(events int64) (streamResult, error) {
	dir, err := os.MkdirTemp("", "pas2p-bench-stream-*")
	if err != nil {
		return streamResult{}, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/stream.pas2p"
	f, err := os.Create(path)
	if err != nil {
		return streamResult{}, err
	}
	spec := workload.SynthSpec{Procs: 16, TargetEvents: events, Seed: 1}
	meta, err := workload.Synthesize(f, spec)
	if err != nil {
		f.Close()
		return streamResult{}, err
	}
	if err := f.Close(); err != nil {
		return streamResult{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return streamResult{}, err
	}

	in, err := os.Open(path)
	if err != nil {
		return streamResult{}, err
	}
	defer in.Close()
	br, err := pas2p.NewTraceBlockReader(in)
	if err != nil {
		return streamResult{}, err
	}
	defer br.Close()

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	runtime.GC()
	start := time.Now()
	res, err := pas2p.AnalyzeStream(context.Background(), br, pas2p.DefaultPhaseConfig(), 1,
		pas2p.AnalyzeStreamOptions{MemBudgetBytes: 32 << 20, SpillDir: dir})
	elapsed := time.Since(start)
	close(stop)
	<-done
	if err != nil {
		return streamResult{}, err
	}
	defer res.Close()

	return streamResult{
		Events:        int64(meta.Events),
		TraceBytes:    st.Size(),
		ElapsedNS:     elapsed.Nanoseconds(),
		EventsPerSec:  float64(meta.Events) / elapsed.Seconds(),
		PeakHeapBytes: peak.Load(),
		Ticks:         res.Stats.Ticks,
		Phases:        res.Table.TotalPhases,
		SpilledPhases: res.Stats.SpilledPhases,
	}, nil
}
