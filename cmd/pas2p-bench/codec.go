package main

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// codecResult is one measured (operation, workers) cell of the block
// codec sweep: throughput over the exact on-disk byte size, plus the
// allocator footprint testing.Benchmark observed.
type codecResult struct {
	Op          string  `json:"op"` // encode | decode | verify_stream | compress
	Workers     int     `json:"workers"`
	Events      int     `json:"events"`
	Bytes       int64   `json:"bytes"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSecond float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	AllocBytes  int64   `json:"alloc_bytes_per_op"`
}

// codecBenchTrace synthesises the measurement trace: a deterministic
// mix of sends, receives and collectives across 8 ranks, sized to the
// requested event count. Receive relations are wired to real sends so
// the trace validates.
func codecBenchTrace(events int) *trace.Trace {
	const procs = 8
	rng := rand.New(rand.NewSource(1234))
	per := events / procs
	streams := make([][]trace.Event, procs)
	for p := 0; p < procs; p++ {
		n := per
		if p < events%procs {
			n++
		}
		rec := trace.NewRecorder(p)
		var tp vtime.Time
		for i := 0; i < n; i++ {
			tp += vtime.Time(rng.Intn(2000) + 1)
			ev := trace.Event{
				Kind: trace.Collective, Involved: procs, CollOp: 2, Peer: -1,
				Tag: int32(i % 8), Size: int64(rng.Intn(1 << 14)),
				Enter: tp, Exit: tp + vtime.Time(rng.Intn(200)),
			}
			switch i % 3 {
			case 0:
				ev.Kind = trace.Send
				ev.Peer = int32((p + 1) % procs)
				ev.CollOp = -1
				ev.RelA, ev.RelB = int64(p), int64(i)
			case 1:
				// Receive the send rank p-1 issued at the same index.
				ev.Kind = trace.Recv
				ev.Peer = int32((p + procs - 1) % procs)
				ev.CollOp = -1
				ev.RelA, ev.RelB = int64((p+procs-1)%procs), int64(i-1)
			}
			rec.Record(ev)
		}
		streams[p] = rec.Events()
	}
	tr, err := trace.NewTrace("codec-bench", procs, streams, 5e9)
	if err != nil {
		panic(err)
	}
	return tr
}

// runCodecBench sweeps the block codec across worker counts on one
// synthetic trace, using testing.Benchmark for stable ns/op and
// alloc accounting. Output bytes are identical at every worker count,
// so the MB/s columns compare directly.
func runCodecBench(events int, workerCounts []int) ([]codecResult, error) {
	tr := codecBenchTrace(events)
	var enc bytes.Buffer
	if err := trace.Encode(&enc, tr); err != nil {
		return nil, err
	}
	encoded := enc.Bytes()
	var comp bytes.Buffer
	if err := trace.Compress(&comp, tr); err != nil {
		return nil, err
	}

	cell := func(op string, workers int, size int64, f func(b *testing.B)) codecResult {
		r := testing.Benchmark(f)
		mbps := 0.0
		if ns := r.NsPerOp(); ns > 0 {
			mbps = float64(size) / (float64(ns) / 1e9) / 1e6
		}
		return codecResult{
			Op: op, Workers: workers, Events: len(tr.Events), Bytes: size,
			NsPerOp: r.NsPerOp(), MBPerSecond: mbps,
			AllocsPerOp: r.AllocsPerOp(), AllocBytes: r.AllocedBytesPerOp(),
		}
	}

	var out []codecResult
	for _, w := range workerCounts {
		opts := trace.CodecOptions{Workers: w}
		out = append(out, cell("encode", w, int64(len(encoded)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := trace.EncodeWith(io.Discard, tr, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
		out = append(out, cell("decode", w, int64(len(encoded)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.DecodeWith(bytes.NewReader(encoded), opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
		out = append(out, cell("compress", w, int64(comp.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := trace.CompressWith(io.Discard, tr, trace.CompressOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		}))
		out = append(out, cell("decompress", w, int64(comp.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.DecompressWith(bytes.NewReader(comp.Bytes()), opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	// The streaming verification pass is sequential by nature; one cell.
	out = append(out, cell("verify_stream", 1, int64(len(encoded)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.VerifyStream(bytes.NewReader(encoded)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return out, nil
}
