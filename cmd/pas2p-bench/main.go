// Command pas2p-bench regenerates the paper's evaluation tables on the
// modelled clusters. Each -table flag value runs the corresponding
// experiment set end to end (instrument -> model -> phases ->
// signature -> predict -> validate) and prints rows with the paper's
// columns; -table all regenerates everything, which is what
// EXPERIMENTS.md records.
//
// Absolute numbers come from this repository's simulated substrate, so
// they are compared with the paper by *shape* (who wins, rough
// factors, orderings), not by matching seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pas2p/internal/report"
	"pas2p/internal/vtime"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 2, 3, 5, 7, 8, 9, D, E or all")
	scale := flag.Int("scale", 1, "divide process counts by this factor (1 = paper scale)")
	overhead := flag.Duration("overhead", 8*time.Microsecond, "per-event instrumentation overhead")
	par := flag.Bool("parallel", false, "fan phase extraction out over the CPUs")
	flag.Parse()

	opts := report.Options{
		ProcScale:      *scale,
		EventOverhead:  vtime.FromSeconds(overhead.Seconds()),
		ParallelPhases: *par,
	}
	w := os.Stdout
	start := time.Now()

	run := func(name string, f func() error) {
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[table %s regenerated in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(n string) bool { return *table == "all" || *table == n }

	if want("2") {
		run("2", func() error { report.Table2(w); fmt.Fprintln(w); return nil })
	}
	if want("3") {
		run("3", func() error { _, err := report.Table3(w, opts); return err })
	}
	if want("5") {
		run("5", func() error { _, err := report.Table5(w, opts); return err })
	}
	if want("7") {
		run("7", func() error { _, err := report.Table7(w, opts); return err })
	}
	if want("d") || want("D") {
		run("D", func() error { _, err := report.AppendixD(w, opts); return err })
	}
	if want("e") || want("E") {
		run("E", func() error { _, err := report.AppendixE(w, opts); return err })
	}
	if want("8") || want("9") {
		run("8+9", func() error {
			rows, err := report.RunPerf(opts)
			if err != nil {
				return err
			}
			if want("8") {
				report.Table8(w, rows)
			}
			if want("9") {
				report.Table9(w, rows)
			}
			return nil
		})
	}
	fmt.Fprintf(w, "[pas2p-bench completed in %v]\n", time.Since(start).Round(time.Millisecond))
}
