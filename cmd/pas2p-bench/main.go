// Command pas2p-bench regenerates the paper's evaluation tables on the
// modelled clusters. Each -table flag value runs the corresponding
// experiment set end to end (instrument -> model -> phases ->
// signature -> predict -> validate) and prints rows with the paper's
// columns; -table all regenerates everything, which is what
// EXPERIMENTS.md records.
//
// Absolute numbers come from this repository's simulated substrate, so
// they are compared with the paper by *shape* (who wins, rough
// factors, orderings), not by matching seconds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pas2p/internal/obs"
	"pas2p/internal/obs/obshttp"
	"pas2p/internal/report"
	"pas2p/internal/vtime"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 2, 3, 5, 7, 8, 9, D, E or all")
	scale := flag.Int("scale", 1, "divide process counts by this factor (1 = paper scale)")
	overhead := flag.Duration("overhead", 8*time.Microsecond, "per-event instrumentation overhead")
	par := flag.Bool("parallel", false, "fan phase extraction out over the CPUs")
	jsonOut := flag.String("json", "", "write the table 8/9 rows plus the block-codec sweep as machine-readable benchmark JSON")
	codecEvents := flag.Int("codec-events", 1_000_000, "event count for the codec sweep recorded in -json output")
	streamEvents := flag.Int64("stream-events", 1_000_000, "event count for the out-of-core streaming scale point in -json output (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	serve := flag.String("serve", "", "serve live telemetry while the tables regenerate, e.g. 127.0.0.1:9090 (port 0 picks one)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := report.Options{
		ProcScale:      *scale,
		EventOverhead:  vtime.FromSeconds(overhead.Seconds()),
		ParallelPhases: *par,
	}
	if *serve != "" {
		o := obs.New()
		o.Flight = obs.NewFlightRecorder(0)
		s, err := obshttp.Serve(*serve, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: serving on %s\n", s.URL())
		opts.Observer = o
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if snap, err := s.Shutdown(ctx); err == nil {
				fmt.Printf("telemetry: stopped after %d scrapes (%d spans)\n",
					snap.Counters["serve.scrapes"], snap.SpansTotal)
			}
		}()
	}
	w := os.Stdout
	start := time.Now()

	run := func(name string, f func() error) {
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[table %s regenerated in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(n string) bool { return *table == "all" || *table == n }

	if want("2") {
		run("2", func() error { report.Table2(w); fmt.Fprintln(w); return nil })
	}
	if want("3") {
		run("3", func() error { _, err := report.Table3(w, opts); return err })
	}
	if want("5") {
		run("5", func() error { _, err := report.Table5(w, opts); return err })
	}
	if want("7") {
		run("7", func() error { _, err := report.Table7(w, opts); return err })
	}
	if want("d") || want("D") {
		run("D", func() error { _, err := report.AppendixD(w, opts); return err })
	}
	if want("e") || want("E") {
		run("E", func() error { _, err := report.AppendixE(w, opts); return err })
	}
	if want("8") || want("9") {
		run("8+9", func() error {
			rows, err := report.RunPerf(opts)
			if err != nil {
				return err
			}
			if want("8") {
				report.Table8(w, rows)
			}
			if want("9") {
				report.Table9(w, rows)
			}
			if *jsonOut != "" {
				fmt.Fprintf(w, "running block-codec sweep (%d events)...\n", *codecEvents)
				codec, err := runCodecBench(*codecEvents, []int{1, 2, 4, 8})
				if err != nil {
					return err
				}
				fmt.Fprintln(w, "running observer-overhead benchmark (instrumented vs nil observer)...")
				obsRes, err := runObsBench("cg", 8, 3)
				if err != nil {
					return err
				}
				printObsBench(obsRes)
				var stream []streamResult
				if *streamEvents > 0 {
					fmt.Fprintf(w, "running out-of-core streaming scale point (%d events)...\n", *streamEvents)
					sr, err := runStreamBench(*streamEvents)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "  streamed %d events in %v (%.0f events/s), peak heap %d MiB\n",
						sr.Events, time.Duration(sr.ElapsedNS).Round(time.Millisecond),
						sr.EventsPerSec, sr.PeakHeapBytes>>20)
					stream = append(stream, sr)
				}
				if err := writeBenchJSON(*jsonOut, rows, codec, obsRes, stream); err != nil {
					return err
				}
				fmt.Fprintf(w, "benchmark rows written to %s\n", *jsonOut)
			}
			return nil
		})
	} else if *jsonOut != "" {
		fmt.Fprintln(os.Stderr, "pas2p-bench: -json needs the table 8/9 experiment set (-table 8, 9 or all)")
	}
	fmt.Fprintf(w, "[pas2p-bench completed in %v]\n", time.Since(start).Round(time.Millisecond))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pas2p-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// benchRow is the machine-readable form of one table 8/9 row: the
// host-side cost of the full pipeline (ns/op, B/op) next to the
// prediction quality it bought.
type benchRow struct {
	App         string  `json:"app"`
	Ranks       int     `json:"ranks"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocBytes  int64   `json:"alloc_bytes_per_op"`
	PETSeconds  float64 `json:"pet_seconds"`
	AETSeconds  float64 `json:"aet_seconds"`
	PETEPercent float64 `json:"pete_percent"`
}

// benchDoc is the combined -json document: the environment the numbers
// were taken on, the pipeline rows, and the block-codec sweep. Absolute
// throughput depends on the host — cpus and gomaxprocs say how much
// parallel speedup was even available, and let tooling refuse to
// compare documents taken on different host shapes.
type benchDoc struct {
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		CPUs       int    `json:"cpus"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Pipeline []benchRow     `json:"pipeline"`
	Codec    []codecResult  `json:"codec"`
	Obs      obsResult      `json:"obs_overhead"`
	Stream   []streamResult `json:"stream,omitempty"`
}

func writeBenchJSON(path string, rows []report.PerfRow, codec []codecResult, obsRes obsResult, stream []streamResult) error {
	var doc benchDoc
	doc.Host.GoVersion = runtime.Version()
	doc.Host.GOOS = runtime.GOOS
	doc.Host.GOARCH = runtime.GOARCH
	doc.Host.CPUs = runtime.NumCPU()
	doc.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Codec = codec
	doc.Obs = obsRes
	doc.Stream = stream
	doc.Pipeline = make([]benchRow, 0, len(rows))
	for _, r := range rows {
		doc.Pipeline = append(doc.Pipeline, benchRow{
			App: r.App, Ranks: r.Procs,
			NsPerOp: r.WallNS, AllocBytes: r.AllocBytes,
			PETSeconds:  r.Outcome.PET.Seconds(),
			AETSeconds:  r.Outcome.AETTarget.Seconds(),
			PETEPercent: r.Outcome.PETEPercent,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(&doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
