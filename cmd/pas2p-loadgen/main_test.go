package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pas2p/internal/service"
)

// startService runs an in-process signature service for the generator
// to hammer, returning its host:port.
func startService(t *testing.T, mod func(*service.Config)) string {
	t.Helper()
	cfg := service.Config{RepoDir: t.TempDir()}
	if mod != nil {
		mod(&cfg)
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.Listen("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.DrainAndShutdown(ctx) //nolint:errcheck
	})
	return srv.Addr()
}

// TestLoadgenCleanCampaign runs a short real campaign against an
// in-process service: the report must balance, percentiles must be
// populated, and the error budget must be clean.
func TestLoadgenCleanCampaign(t *testing.T) {
	addr := startService(t, nil)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-duration", "700ms",
		"-workers", "4",
		"-app", "cg", "-procs", "4",
		"-mix", "analyze=2,lookup=5,predict=2,sign=1",
		"-seed", "3",
		"-report", reportPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout:\n%s", err, stdout.String())
	}

	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if !rep.Clean || rep.TotalUnclean != 0 {
		t.Fatalf("campaign not clean: %+v", rep)
	}
	if rep.TotalRequests == 0 || rep.TotalOK == 0 {
		t.Fatalf("campaign did nothing: %+v", rep)
	}
	var sum int64
	for class, cs := range rep.Classes {
		sum += cs.Requests
		if cs.OK > 0 && cs.P50MS <= 0 {
			t.Errorf("class %s has OKs but no p50", class)
		}
		if cs.P50MS > cs.P95MS || cs.P95MS > cs.P99MS {
			t.Errorf("class %s percentiles not monotone: %+v", class, cs)
		}
	}
	if sum != rep.TotalRequests {
		t.Fatalf("class totals %d != total %d", sum, rep.TotalRequests)
	}
	if !strings.Contains(stdout.String(), "loadgen") {
		t.Fatalf("no human report on stdout:\n%s", stdout.String())
	}
}

// TestLoadgenSurvivesSheddingServer pins retry/backoff: a server with
// one heavy slot and a tiny queue sheds hard, yet the campaign stays
// clean — every shed is retried or ends as a typed, counted answer.
func TestLoadgenSurvivesSheddingServer(t *testing.T) {
	addr := startService(t, func(c *service.Config) {
		c.HeavySlots = 1
		c.HeavyQueue = 1
	})
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-duration", "700ms",
		"-workers", "6",
		"-app", "cg", "-procs", "4",
		"-mix", "analyze=5,sign=3,predict=2",
		"-seed", "5",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run under shedding: %v\nstdout:\n%s", err, stdout.String())
	}
}

// TestLoadgenFlagAndMixErrors pins the refusal paths.
func TestLoadgenFlagAndMixErrors(t *testing.T) {
	var out bytes.Buffer
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no addr", []string{"-duration", "1s"}, "-addr is required"},
		{"stray arg", []string{"-addr", "x:1", "stray"}, "unexpected argument"},
		{"bad mix class", []string{"-addr", "x:1", "-mix", "frob=1"}, "mix class"},
		{"bad mix weight", []string{"-addr", "x:1", "-mix", "sign=-2"}, "non-negative"},
		{"empty mix", []string{"-addr", "x:1", "-mix", "sign=0"}, "selects nothing"},
	} {
		if err := run(tc.args, &out, &out); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("analyze=3, lookup=6,predict=2,sign=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[opAnalyze] != 3 || mix[opLookup] != 6 || mix[opPredict] != 2 || mix[opSign] != 1 {
		t.Fatalf("parseMix: %v", mix)
	}
	if _, err := parseMix("analyze=x"); err == nil {
		t.Fatal("accepted non-integer weight")
	}
	if _, err := parseMix("analyze"); err == nil {
		t.Fatal("accepted termless mix")
	}
}
