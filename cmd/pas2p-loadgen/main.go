// Command pas2p-loadgen drives a running pas2pd with closed-loop
// mixed traffic (analyze, sign, lookup, predict) and reports latency
// percentiles and an error budget per request class.
//
// Each worker loops: pick an operation by the -mix weights, send it,
// and — when the server sheds load with 429/503 — back off honouring
// Retry-After before retrying. The generator verifies every success
// is checksum-valid (the analyze answer echoes the uploaded trace's
// CRC; sign/lookup/predict answers carry the signature payload SHA,
// which must stay consistent across the run), so the report's
// "unclean" column counts real contract violations: transport
// failures, untyped error bodies, or checksum mismatches. A clean run
// ends with zero unclean errors no matter how hard the server shed.
//
// Usage:
//
//	pas2p-loadgen -addr HOST:PORT [-duration 10s] [-workers 8]
//	              [-mix analyze=3,lookup=6,predict=2,sign=1]
//	              [-app cg -procs 8 -workload W -target B]
//	              [-deadline-ms N] [-seed S] [-report FILE]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pas2p"
	"pas2p/internal/fsx"
	"pas2p/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "pas2p-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, separated for tests.
type options struct {
	addr       string
	duration   time.Duration
	workers    int
	mix        map[string]int
	app        string
	procs      int
	workload   string
	target     string
	deadlineMS int
	seed       int64
	reportPath string
	warmups    int
}

func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("mix term %q is not class=weight", term)
		}
		switch k {
		case opAnalyze, opSign, opLookup, opPredict:
		default:
			return nil, fmt.Errorf("mix class %q (want analyze, sign, lookup, predict)", k)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q must be a non-negative integer", v)
		}
		mix[k] = w
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix selects nothing")
	}
	return mix, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pas2p-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "", "pas2pd address (host:port; required)")
		duration   = fs.Duration("duration", 10*time.Second, "how long to generate load")
		workers    = fs.Int("workers", 8, "closed-loop worker count")
		mixSpec    = fs.String("mix", "analyze=3,lookup=6,predict=2,sign=1", "traffic mix class=weight,...")
		app        = fs.String("app", "cg", "application the traffic is about")
		procs      = fs.Int("procs", 8, "process count")
		workload   = fs.String("workload", "", "workload (default: the app's default)")
		target     = fs.String("target", "B", "predict target cluster")
		deadlineMS = fs.Int("deadline-ms", 0, "X-Deadline-Ms to send on every request (0: server default)")
		seed       = fs.Int64("seed", 1, "traffic-shape seed (op choices, think times)")
		reportPath = fs.String("report", "", "write the JSON report here ('' = stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	opts := options{
		addr: *addr, duration: *duration, workers: *workers, mix: mix,
		app: *app, procs: *procs, workload: *workload, target: *target,
		deadlineMS: *deadlineMS, seed: *seed, reportPath: *reportPath,
	}
	rep, err := generate(opts, stdout)
	if err != nil {
		return err
	}
	printReport(stdout, rep)
	if *reportPath != "" {
		if err := fsx.WriteFileAtomic(fsx.OS{}, *reportPath, func(w io.Writer) error {
			return writeReportJSON(w, rep)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *reportPath)
	}
	if rep.TotalUnclean > 0 {
		return fmt.Errorf("%d unclean errors (see report)", rep.TotalUnclean)
	}
	return nil
}

// makeTracefile produces the tracefile bytes the analyze traffic
// uploads: one local traced run of the app on cluster A, encoded in
// the v2 checksummed format.
func makeTracefile(app string, procs int, workload string) ([]byte, uint32, error) {
	a, err := pas2p.MakeApp(app, procs, workload)
	if err != nil {
		return nil, 0, err
	}
	d, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		return nil, 0, err
	}
	res, err := pas2p.RunApp(a, pas2p.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	if err := pas2p.EncodeTrace(&buf, res.Trace, pas2p.TraceCodecOptions{}); err != nil {
		return nil, 0, err
	}
	data := buf.Bytes()
	crc, ok := trace.FileCRC(data)
	if !ok {
		return nil, 0, fmt.Errorf("encoded tracefile has no v2 trailer")
	}
	return data, crc, nil
}

// generate runs the closed-loop campaign and aggregates the report.
func generate(opts options, stdout io.Writer) (*Report, error) {
	traceData, traceCRC, err := makeTracefile(opts.app, opts.procs, opts.workload)
	if err != nil {
		return nil, fmt.Errorf("building the analyze payload: %w", err)
	}
	fmt.Fprintf(stdout, "loadgen    : %s/%d tracefile is %d bytes (crc32c %08x)\n",
		opts.app, opts.procs, len(traceData), traceCRC)

	// Seed the repository once so lookup/predict traffic has something
	// to find; shed responses here are retried like any other.
	seedCli := newClient(opts, rand.New(rand.NewSource(opts.seed)), traceData, traceCRC)
	r := seedCli.do(opSign)
	if r.unclean {
		return nil, fmt.Errorf("seeding sign failed uncleanly: %s", r.detail)
	}
	fmt.Fprintf(stdout, "loadgen    : repository seeded (sign: %s), starting %d workers for %v\n",
		r.outcome(), opts.workers, opts.duration)

	classes := make([]string, 0, len(opts.mix))
	weights := make([]int, 0, len(opts.mix))
	for _, c := range []string{opAnalyze, opSign, opLookup, opPredict} {
		if w := opts.mix[c]; w > 0 {
			classes = append(classes, c)
			weights = append(weights, w)
		}
	}
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}

	deadline := time.Now().Add(opts.duration)
	var wg sync.WaitGroup
	workerResults := make([][]result, opts.workers)
	for wi := 0; wi < opts.workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.seed + int64(wi)*7919))
			cli := newClient(opts, rng, traceData, traceCRC)
			for time.Now().Before(deadline) {
				n := rng.Intn(totalWeight)
				op := classes[len(classes)-1]
				for i, w := range weights {
					if n < w {
						op = classes[i]
						break
					}
					n -= w
				}
				workerResults[wi] = append(workerResults[wi], cli.do(op))
			}
		}(wi)
	}
	wg.Wait()

	var all []result
	for _, rs := range workerResults {
		all = append(all, rs...)
	}
	all = append(all, r) // the seeding sign is traffic too
	return buildReport(opts, all), nil
}
