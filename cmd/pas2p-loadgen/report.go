package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ClassStats aggregates one request class.
type ClassStats struct {
	Requests int64            `json:"requests"`
	OK       int64            `json:"ok"`
	Retries  int64            `json:"retries"`
	Errors   map[string]int64 `json:"errors,omitempty"` // typed code → count
	Unclean  int64            `json:"unclean"`
	P50MS    float64          `json:"p50_ms"`
	P95MS    float64          `json:"p95_ms"`
	P99MS    float64          `json:"p99_ms"`
}

// Report is the campaign summary the smoke job archives: latency
// percentiles per class plus the error budget. Shed counts 429
// queue_full and 503 shed/draining answers — expected under load; the
// budget that must be zero is TotalUnclean.
type Report struct {
	Addr          string                 `json:"addr"`
	App           string                 `json:"app"`
	Procs         int                    `json:"procs"`
	Workload      string                 `json:"workload"`
	Workers       int                    `json:"workers"`
	Seed          int64                  `json:"seed"`
	DurationNS    int64                  `json:"duration_ns"`
	Classes       map[string]*ClassStats `json:"classes"`
	TotalRequests int64                  `json:"total_requests"`
	TotalOK       int64                  `json:"total_ok"`
	TotalRetries  int64                  `json:"total_retries"`
	TotalShed     int64                  `json:"total_shed"`
	TotalUnclean  int64                  `json:"total_unclean"`
	UncleanDetail []string               `json:"unclean_detail,omitempty"`
	Clean         bool                   `json:"clean"`
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func buildReport(opts options, results []result) *Report {
	rep := &Report{
		Addr: opts.addr, App: opts.app, Procs: opts.procs, Workload: opts.workload,
		Workers: opts.workers, Seed: opts.seed, DurationNS: int64(opts.duration),
		Classes: map[string]*ClassStats{},
	}
	lat := map[string][]float64{}
	for _, r := range results {
		cs := rep.Classes[r.class]
		if cs == nil {
			cs = &ClassStats{Errors: map[string]int64{}}
			rep.Classes[r.class] = cs
		}
		cs.Requests++
		cs.Retries += int64(r.retries)
		rep.TotalRequests++
		rep.TotalRetries += int64(r.retries)
		switch {
		case r.ok:
			cs.OK++
			rep.TotalOK++
			lat[r.class] = append(lat[r.class], float64(r.latency)/1e6)
		case r.unclean:
			cs.Unclean++
			rep.TotalUnclean++
			if len(rep.UncleanDetail) < 32 {
				rep.UncleanDetail = append(rep.UncleanDetail, r.detail)
			}
		default:
			cs.Errors[r.code]++
			switch r.code {
			case "queue_full", "shed", "draining":
				rep.TotalShed++
			}
		}
	}
	for class, ms := range lat {
		sort.Float64s(ms)
		cs := rep.Classes[class]
		cs.P50MS = percentile(ms, 0.50)
		cs.P95MS = percentile(ms, 0.95)
		cs.P99MS = percentile(ms, 0.99)
	}
	rep.Clean = rep.TotalUnclean == 0
	return rep
}

func writeReportJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "loadgen    : %d requests in %v (%d ok, %d shed+retried answers, %d retries, %d unclean)\n",
		rep.TotalRequests, time.Duration(rep.DurationNS), rep.TotalOK, rep.TotalShed, rep.TotalRetries, rep.TotalUnclean)
	classes := make([]string, 0, len(rep.Classes))
	for c := range rep.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := rep.Classes[c]
		fmt.Fprintf(w, "  %-8s %6d req %6d ok  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms",
			c, cs.Requests, cs.OK, cs.P50MS, cs.P95MS, cs.P99MS)
		if len(cs.Errors) > 0 {
			keys := make([]string, 0, len(cs.Errors))
			for k := range cs.Errors {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(w, "  errors:")
			for _, k := range keys {
				fmt.Fprintf(w, " %s=%d", k, cs.Errors[k])
			}
		}
		if cs.Unclean > 0 {
			fmt.Fprintf(w, "  UNCLEAN=%d", cs.Unclean)
		}
		fmt.Fprintln(w)
	}
	for _, d := range rep.UncleanDetail {
		fmt.Fprintf(w, "  unclean: %s\n", d)
	}
}
