package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pas2p/internal/service"
)

// Operation classes — also the report's class keys.
const (
	opAnalyze = "analyze"
	opSign    = "sign"
	opLookup  = "lookup"
	opPredict = "predict"
)

// result records one logical operation (including its retries).
type result struct {
	class   string
	ok      bool
	status  int    // final HTTP status (0 on transport failure)
	code    string // typed error code on failure ("" on success)
	retries int    // extra attempts after the first
	latency time.Duration
	unclean bool // transport error, untyped body, or checksum mismatch
	detail  string
	cache   string // analyze only: X-Cache of a successful answer
}

func (r result) outcome() string {
	if r.ok {
		return "ok"
	}
	if r.code != "" {
		return r.code
	}
	return "unclean"
}

// shaLedger pins the signature payload checksum across the campaign:
// once any response reports a SHA for the (app, procs, workload)
// identity, later responses must agree unless a sign legitimately
// rewrote the entry. Sign rewrites store the same deterministic
// payload, so a mismatch is a served-corruption incident.
type shaLedger struct {
	mu  sync.Mutex
	sha map[string]string
}

var ledger = &shaLedger{sha: make(map[string]string)}

func (l *shaLedger) check(key, sha string) error {
	if sha == "" {
		return fmt.Errorf("response carries no payload_sha256")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.sha[key]; ok && prev != sha {
		return fmt.Errorf("payload_sha256 flapped: %.12s… then %.12s…", prev, sha)
	}
	l.sha[key] = sha
	return nil
}

// client is one worker's connection to the daemon: it retries shed
// and queue-full responses with jittered backoff, honouring the
// server's Retry-After (clamped so a test campaign still makes
// progress), and verifies every success's checksum.
type client struct {
	opts     options
	hc       *http.Client
	rng      *rand.Rand
	traceRaw []byte
	traceCRC uint32

	maxAttempts  int
	maxRetrySlee time.Duration
}

func newClient(opts options, rng *rand.Rand, traceRaw []byte, traceCRC uint32) *client {
	return &client{
		opts:         opts,
		hc:           &http.Client{Timeout: 2 * time.Minute},
		rng:          rng,
		traceRaw:     traceRaw,
		traceCRC:     traceCRC,
		maxAttempts:  5,
		maxRetrySlee: 2 * time.Second,
	}
}

func (c *client) url(path string) string { return "http://" + c.opts.addr + path }

func (c *client) shaKey() string {
	return fmt.Sprintf("%s/p%d/%s", c.opts.app, c.opts.procs, c.opts.workload)
}

// do performs one logical operation with retries and returns its
// result record.
func (c *client) do(op string) result {
	res := result{class: op}
	backoff := 50 * time.Millisecond
	start := time.Now()
	for attempt := 0; ; attempt++ {
		status, cacheHdr, body, err := c.send(op)
		if err != nil {
			// Transport-level failure: retry a little — a drain can kill
			// the connection under us — but a persistent one is unclean.
			if attempt+1 < c.maxAttempts {
				res.retries++
				time.Sleep(c.jitter(backoff))
				backoff *= 2
				continue
			}
			res.unclean = true
			res.detail = fmt.Sprintf("%s: transport: %v", op, err)
			res.latency = time.Since(start)
			return res
		}
		res.status = status
		if status == http.StatusOK {
			res.latency = time.Since(start)
			res.cache = cacheHdr
			if verr := c.verify(op, body); verr != nil {
				res.unclean = true
				res.detail = fmt.Sprintf("%s: %v", op, verr)
				return res
			}
			res.ok = true
			return res
		}
		code, retryAfter, perr := parseTypedError(body)
		if perr != nil {
			res.unclean = true
			res.detail = fmt.Sprintf("%s: untyped %d response: %v", op, status, perr)
			res.latency = time.Since(start)
			return res
		}
		res.code = code
		if retryable(status) && attempt+1 < c.maxAttempts {
			res.retries++
			time.Sleep(c.retryDelay(retryAfter, backoff))
			backoff *= 2
			continue
		}
		res.latency = time.Since(start)
		return res
	}
}

// retryable: the statuses the server uses for load shedding and
// draining; everything else is a final answer.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryDelay honours Retry-After but clamps it so short campaigns keep
// probing a shedding server, and jitters so workers do not re-arrive
// in lockstep.
func (c *client) retryDelay(retryAfter, backoff time.Duration) time.Duration {
	d := backoff
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.maxRetrySlee {
		d = c.maxRetrySlee
	}
	return c.jitter(d)
}

func (c *client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)))
}

// send issues one attempt of op and returns (status, X-Cache, body).
func (c *client) send(op string) (int, string, []byte, error) {
	var req *http.Request
	var err error
	switch op {
	case opAnalyze:
		req, err = http.NewRequest(http.MethodPost,
			c.url("/v1/analyze?warm="+strconv.Itoa(1+c.rng.Intn(2))), bytes.NewReader(c.traceRaw))
		if req != nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
	case opSign:
		req, err = jsonRequest(c.url("/v1/sign"), service.SignRequest{
			App: c.opts.app, Procs: c.opts.procs, Workload: c.opts.workload,
		})
	case opLookup:
		req, err = http.NewRequest(http.MethodGet,
			c.url(fmt.Sprintf("/v1/lookup?app=%s&procs=%d&workload=%s",
				c.opts.app, c.opts.procs, c.opts.workload)), nil)
	case opPredict:
		req, err = jsonRequest(c.url("/v1/predict"), service.PredictRequest{
			App: c.opts.app, Procs: c.opts.procs, Workload: c.opts.workload,
			Target: c.opts.target,
		})
	default:
		return 0, "", nil, fmt.Errorf("unknown op %q", op)
	}
	if err != nil {
		return 0, "", nil, err
	}
	if c.opts.deadlineMS > 0 {
		req.Header.Set(service.DeadlineHeader, strconv.Itoa(c.opts.deadlineMS))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get(service.CacheHeader), body, nil
}

func jsonRequest(url string, v any) (*http.Request, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return req, nil
}

// verify holds a 200 answer to the checksum-valid contract.
func (c *client) verify(op string, body []byte) error {
	switch op {
	case opAnalyze:
		var v service.AnalyzeResponse
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("undecodable analyze body: %v", err)
		}
		if v.TraceCRC32C != c.traceCRC {
			return fmt.Errorf("analyze echoed crc %08x, uploaded %08x", v.TraceCRC32C, c.traceCRC)
		}
		if v.TotalPhases <= 0 {
			return fmt.Errorf("analyze reports no phases")
		}
	case opSign:
		var v service.SignResponse
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("undecodable sign body: %v", err)
		}
		return ledger.check(c.shaKey(), v.PayloadSHA256)
	case opLookup:
		var v service.LookupResponse
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("undecodable lookup body: %v", err)
		}
		return ledger.check(c.shaKey(), v.PayloadSHA256)
	case opPredict:
		var v service.PredictResponse
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("undecodable predict body: %v", err)
		}
		if v.PETNS <= 0 {
			return fmt.Errorf("predict returned PET %d", v.PETNS)
		}
		return ledger.check(c.shaKey(), v.PayloadSHA256)
	}
	return nil
}

// parseTypedError decodes the service error envelope; any non-200
// whose body does not carry one is an unclean failure.
func parseTypedError(body []byte) (code string, retryAfter time.Duration, err error) {
	var e struct {
		Error struct {
			Code       string `json:"code"`
			Message    string `json:"message"`
			RetryAfter int    `json:"retry_after_s"`
		} `json:"error"`
	}
	if uerr := json.Unmarshal(body, &e); uerr != nil {
		return "", 0, fmt.Errorf("%v (body %.120q)", uerr, body)
	}
	if e.Error.Code == "" {
		return "", 0, fmt.Errorf("error body without a code (body %.120q)", body)
	}
	return e.Error.Code, time.Duration(e.Error.RetryAfter) * time.Second, nil
}
